// The soak's inner loop: chunk replay, quiescent-point audits, lockstep
// oracle probes and event execution. Everything here runs at chunk
// boundaries, after InjectReplay has drained the engine to quiescence —
// the one place where "delivered + dropped == injected", "global state is
// well-defined" and "replicas have converged" are all simultaneously
// checkable.
package chaos

import (
	"fmt"
	"time"

	"snap/internal/core"
	"snap/internal/dataplane"
	"snap/internal/faultpoint"
	"snap/internal/syntax"
	"snap/internal/traffic"
)

// runChunk builds this chunk's churn trace from the intended workload
// restricted to the lineage topology, advances the shadow oracle over it
// (when tracking), and replays it through the engine.
func (h *harness) runChunk(ci int) error {
	cur := h.intended.Restrict(h.ctl.Compilation().Topo)
	flows := cur.ChurnReplay(h.o.Chunk, churnActive, churnRecycle, h.o.Seed*1000003+int64(ci))
	if flows == nil {
		return fmt.Errorf("no routable demand for chunk trace")
	}
	// Offsetting identities per chunk keeps the churn pressure up across
	// chunk boundaries: the ring restarts each chunk, but the identities
	// it recycles through are globally fresh.
	offset := uint32(ci) * uint32(churnActive+h.o.Chunk/churnRecycle)
	trace := make([]dataplane.Ingress, len(flows))
	for i, f := range flows {
		p := flowPacket(f.Pair[0], f.Pair[1], f.ID+offset)
		trace[i] = dataplane.Ingress{Port: f.Pair[0], Packet: p}
		h.injected[f.Pair[0]]++
	}
	if h.orc.synced && !h.degraded {
		for _, in := range trace {
			if _, err := h.orc.eval(h.ctl.Compilation().Topo, in.Packet); err != nil {
				h.violate(ci, "oracle eval: %v", err)
				h.orc.synced = false
				break
			}
		}
	}
	h.lastChunkLen = len(trace)
	start := time.Now()
	err := h.eng.InjectReplay(trace)
	h.engineNs += time.Since(start).Nanoseconds()
	return err
}

// audit runs the quiescent-point invariants after chunk ci.
func (h *harness) audit(ci int, wasDegraded bool) {
	h.bankObserved()

	// Packet conservation: every injected packet is accounted delivered
	// or dropped once the engine is quiescent.
	st := h.eng.Stats()
	if st.Injected != st.Delivered+st.Dropped {
		h.violate(ci, "packet conservation: injected=%d delivered=%d dropped=%d",
			st.Injected, st.Delivered, st.Dropped)
	}

	// Zero unexplained loss: drops may appear only in a chunk that ran
	// inside an open failure window.
	if dd := st.Dropped - h.lastDrop; dd != 0 {
		if wasDegraded {
			h.rep.DegradedDrops += dd
			h.logf("chunk=%d degraded window dropped %d", ci, dd)
		} else {
			h.violate(ci, "%d drops in a healthy window", dd)
		}
	}
	h.lastDrop = st.Dropped

	// Per-port conservation: the banked observed matrix (deliveries plus
	// attributed drops, summed across observation windows) must account
	// for every packet this harness injected at each port.
	rows := map[int]float64{}
	for k, v := range h.banked {
		rows[k[0]] += v
	}
	for port, inj := range h.injected {
		if got := rows[port]; got < inj-0.5 || got > inj+0.5 {
			h.violate(ci, "port %d conservation: injected %.0f, observed %.0f", port, inj, got)
		}
	}

	// Replica convergence at quiescence (a no-op under locks).
	if err := h.eng.AuditReplicas(); err != nil {
		h.violate(ci, "replica audit: %v", err)
	}

	// Differential oracle: in tracked windows the engine's merged global
	// state must equal the shadow exactly.
	if h.orc.synced && !h.degraded {
		if got := h.eng.GlobalState(); !got.Equal(h.orc.store) {
			h.violate(ci, "oracle state mismatch: engine disagrees with semantics shadow")
			h.resync(ci, "after mismatch")
		}
		h.rep.OracleStateAudits++
	}
}

// probeFlows injects sampled flows one at a time and compares the engine's
// delivery set against the semantics' prediction for the same packet —
// the lockstep differential check, run only in tracked windows.
func (h *harness) probeFlows(ci int) {
	cur := h.intended.Restrict(h.ctl.Compilation().Topo)
	for i := 0; i < h.o.Probes; i++ {
		pair, ok := drawPair(cur, h.rng)
		if !ok {
			return
		}
		h.probeSeq++
		p := flowPacket(pair[0], pair[1], 0xfff00000+h.probeSeq)
		want, err := h.orc.eval(h.ctl.Compilation().Topo, p)
		if err != nil {
			h.violate(ci, "probe oracle eval: %v", err)
			return
		}
		h.injected[pair[0]]++
		out, err := h.eng.InjectBatch([]dataplane.Ingress{{Port: pair[0], Packet: p}})
		if err != nil {
			h.violate(ci, "probe inject: %v", err)
			return
		}
		got := out[0]
		bad := len(got) != len(want)
		for _, d := range got {
			if !want[fmt.Sprintf("%d|%s", d.Port, d.Packet.Key())] {
				bad = true
			}
		}
		if bad {
			h.violate(ci, "probe %d->%d: engine delivered %d copies, semantics predicts %d",
				pair[0], pair[1], len(got), len(want))
		}
		h.rep.OracleProbes++
	}
	h.bankObserved()
}

// execEvent runs one scheduled event; returning false aborts the soak (a
// controller error leaves the network in a state the schedule no longer
// describes, so continuing would only cascade violations).
func (h *harness) execEvent(ci int, ev event, variants []syntax.Policy) bool {
	switch ev.kind {
	case "shift":
		h.intended = traffic.Zipf(h.pris, demandVolume, 1.4, h.o.Seed+101)
		h.record(ci, "shift", "workload shifted to zipf hot-key matrix")

	case "policy":
		h.polID++
		next := variants[h.polID%len(variants)]
		before := entryCount(h.eng.GlobalState())
		pr, err := h.ctl.ApplyPolicy(next)
		if err != nil {
			h.violate(ci, "policy edit: %v", err)
			return false
		}
		if after := entryCount(h.eng.GlobalState()); after != before {
			h.violate(ci, "policy edit lost state: %d entries before, %d after", before, after)
		}
		h.orc.policy = next
		h.record(ci, "policy", fmt.Sprintf("variant=%d epoch=%d plan={%s}%s",
			h.polID%len(variants), pr.Epoch, pr.Plan, deltaSummary(pr.Delta)))
		if h.o.Verbose {
			h.logf("  policy phases: p1=%s p2=%s p3=%s p5=%s p6=%s swap=%s",
				pr.Times.P1Deps, pr.Times.P2XFDD, pr.Times.P3Map, pr.Times.P5Solve, pr.Times.P6Rules, pr.Swap)
		}

	case "fail":
		// The soak's failures strike at quiescent boundaries, so drain the
		// mirror-replication queues first: the replica a later failover
		// promotes is then a complete copy, which makes the recovery
		// accounting (Recovered, LostEntries) deterministic per seed.
		// Replica *lag* under fire is the replication bench's subject, not
		// this harness's — here lag would only blur the reproducibility
		// the repro commands depend on.
		h.eng.FlushReplication()
		for _, sw := range ev.scen.Switches {
			if err := h.eng.FailSwitch(sw); err != nil {
				h.violate(ci, "fail switch %d: %v", sw, err)
				return false
			}
		}
		for _, l := range ev.scen.Links {
			if err := h.eng.FailLink(l[0], l[1]); err != nil {
				h.violate(ci, "fail link %d-%d: %v", l[0], l[1], err)
				return false
			}
		}
		h.degraded = true
		h.orc.synced = false
		h.record(ci, "fail", ev.scen.String())

	case "failover":
		before := entryCount(h.eng.GlobalState())
		fr, err := h.ctl.Failover(ev.scen)
		if err != nil {
			h.violate(ci, "failover: %v", err)
			return false
		}
		// Bounded state loss: the surviving entries plus exactly what the
		// replicas restored — nothing else appears or disappears.
		if after := entryCount(h.eng.GlobalState()); after != before+fr.Recovered {
			h.violate(ci, "failover entry accounting: %d before + %d recovered != %d after",
				before, fr.Recovered, after)
		}
		h.rep.RecoveredEntries += fr.Recovered
		h.rep.PromotedVars += len(fr.Promoted)
		h.rep.LostEntries += fr.LostEntries
		h.rep.LostWrites = fr.LostWrites
		h.degraded = false
		h.record(ci, "failover", fmt.Sprintf("%s epoch=%d recovered=%d promoted=%d lost=%d lost-ports=%v",
			ev.scen, fr.Epoch, fr.Recovered, len(fr.Promoted), fr.LostEntries, fr.LostPorts))
		h.resync(ci, "post-failover")

	case "restore":
		before := entryCount(h.eng.GlobalState())
		rr, err := h.ctl.Restore(ev.scen, h.intended)
		if err != nil {
			h.violate(ci, "restore: %v", err)
			return false
		}
		// Revived switches come back empty: recovery must not invent or
		// drop entries.
		if after := entryCount(h.eng.GlobalState()); after != before {
			h.violate(ci, "restore entry accounting: %d entries before, %d after", before, after)
		}
		h.record(ci, "restore", fmt.Sprintf("%s epoch=%d restored-ports=%v plan={%s}",
			ev.scen, rr.Epoch, rr.RestoredPorts, rr.Plan))
		h.resync(ci, "post-restore")

	case "cfail":
		// Transient controller failure: the recompile of a policy rotation
		// fails once; the retry budget absorbs it inside the same
		// operation, with no externally visible failure.
		h.polID++
		next := variants[h.polID%len(variants)]
		before := entryCount(h.eng.GlobalState())
		retriesBefore := h.ctl.Retries()
		faultpoint.Enable(faultpoint.CtrlRecompile, faultpoint.Plan{Times: 1})
		pr, err := h.ctl.ApplyPolicy(next)
		if err != nil {
			h.violate(ci, "cfail: recompile fault not absorbed by retry: %v", err)
			return false
		}
		if d := h.ctl.Retries() - retriesBefore; d != 1 {
			h.violate(ci, "cfail: %d retries taken, want 1", d)
		}
		if after := entryCount(h.eng.GlobalState()); after != before {
			h.violate(ci, "cfail lost state: %d entries before, %d after", before, after)
		}
		h.orc.policy = next
		h.record(ci, "cfail", fmt.Sprintf("recompile fault absorbed by retry; variant=%d epoch=%d",
			h.polID%len(variants), pr.Epoch))

	case "afail":
		// Mid-swap engine failure: the apply stage of a policy rotation
		// fails once, the engine rolls back to the prior plane with state
		// intact, and the controller's retry commits the identical edit on
		// the second attempt — so the epoch advances exactly once.
		h.polID++
		next := variants[h.polID%len(variants)]
		before := entryCount(h.eng.GlobalState())
		epochBefore := h.eng.Epoch()
		rollbacksBefore := h.eng.Stats().Rollbacks
		faultpoint.Enable(faultpoint.EngineApplyLink, faultpoint.Plan{Times: 1})
		pr, err := h.ctl.ApplyPolicy(next)
		if err != nil {
			h.violate(ci, "afail: apply fault not absorbed by rollback+retry: %v", err)
			return false
		}
		if d := h.eng.Stats().Rollbacks - rollbacksBefore; d != 1 {
			h.violate(ci, "afail: %d rollbacks, want 1", d)
		}
		if d := h.eng.Epoch() - epochBefore; d != 1 {
			h.violate(ci, "afail: epoch advanced by %d across the event, want exactly 1", d)
		}
		if after := entryCount(h.eng.GlobalState()); after != before {
			h.violate(ci, "afail lost state: %d entries before, %d after", before, after)
		}
		h.orc.policy = next
		h.record(ci, "afail", fmt.Sprintf("apply fault rolled back, retried; variant=%d epoch=%d",
			h.polID%len(variants), pr.Epoch))

	case "wpanic":
		// Worker panic: one probe packet trips an injected VM panic at its
		// ingress switch. The panic fires before the VM writes, so the
		// shadow oracle stays synced with zero lost state; the engine
		// quarantines the switch (drop and count) and keeps serving on the
		// same epoch. Re-committing the current policy heals the switch.
		cur := h.intended.Restrict(h.ctl.Compilation().Topo)
		pair, ok := drawPair(cur, h.rng)
		if !ok {
			h.record(ci, "wpanic", "skipped: no routable demand")
			return true
		}
		before := entryCount(h.eng.GlobalState())
		panicsBefore := h.eng.Stats().ContainedPanics
		h.probeSeq++
		p := flowPacket(pair[0], pair[1], 0xffe00000+h.probeSeq)
		faultpoint.Enable(faultpoint.EngineRun, faultpoint.Plan{Kind: faultpoint.KindPanic, Times: 1})
		h.injected[pair[0]]++
		out, err := h.eng.InjectBatch([]dataplane.Ingress{{Port: pair[0], Packet: p}})
		if err != nil {
			h.violate(ci, "wpanic: injected panic poisoned the engine: %v", err)
			return false
		}
		if len(out[0]) != 0 {
			h.violate(ci, "wpanic: panicked packet still delivered %d copies", len(out[0]))
		}
		if d := h.eng.Stats().ContainedPanics - panicsBefore; d != 1 {
			h.violate(ci, "wpanic: %d contained panics, want 1", d)
		}
		quar := h.eng.QuarantinedSwitches()
		if len(quar) != 1 {
			h.violate(ci, "wpanic: %d switches quarantined, want 1", len(quar))
		}
		if after := entryCount(h.eng.GlobalState()); after != before {
			h.violate(ci, "wpanic lost state: %d entries before, %d after", before, after)
		}
		if _, err := h.ctl.ApplyPolicy(variants[h.polID%len(variants)]); err != nil {
			h.violate(ci, "wpanic heal: %v", err)
			return false
		}
		if q := h.eng.QuarantinedSwitches(); len(q) != 0 {
			h.violate(ci, "wpanic: quarantine survived the healing swap: %v", q)
		}
		if after := entryCount(h.eng.GlobalState()); after != before {
			h.violate(ci, "wpanic heal lost state: %d entries before, %d after", before, after)
		}
		// The panicked probe is this event's one explained drop; fold it
		// into the ledgers so the next audit sees a clean healthy window.
		h.bankObserved()
		h.lastDrop = h.eng.Stats().Dropped
		h.record(ci, "wpanic", fmt.Sprintf("panic contained; quarantined=%v healed epoch=%d",
			quar, h.eng.Epoch()))

	case "corrupt":
		if h.o.corrupt != nil {
			if err := h.o.corrupt(h.eng, h.ctl.Compilation().Config); err != nil {
				h.violate(ci, "corrupt hook: %v", err)
				return false
			}
			h.record(ci, "corrupt", "state tampered by test hook")
		}
	}
	return true
}

// deltaSummary compacts a recompilation's DeltaReport for the event
// timeline: the path taken and, on the delta path, the reuse counters.
func deltaSummary(d *core.DeltaReport) string {
	if d == nil {
		return ""
	}
	if d.Scenario != "delta" {
		return fmt.Sprintf(" delta=%s", d.Scenario)
	}
	return fmt.Sprintf(" delta=delta dirty-vars=%d nodes=%d/%d pinned=%d moved=%d progs=%d/%d dirty-switches=%d",
		len(d.DirtyVars), d.ReusedNodes, d.ReusedNodes+d.FreshNodes,
		d.PinnedGroups, d.MovedGroups,
		d.ReusedPrograms, d.ReusedPrograms+d.CompiledPrograms, len(d.DirtySwitches))
}

// driftStep runs the passive control loop: if the observed matrix has
// drifted past the monitor's threshold, the controller recompiles and
// hot-swaps — the soak's "TM drift" events are detected, never scripted.
func (h *harness) driftStep(ci int) {
	div, drifted := h.ctl.Drift()
	if !drifted {
		return
	}
	before := entryCount(h.eng.GlobalState())
	rec, err := h.ctl.Step()
	if err != nil {
		h.violate(ci, "drift reconfig: %v", err)
		return
	}
	if rec == nil {
		return
	}
	if after := entryCount(h.eng.GlobalState()); after != before {
		h.violate(ci, "drift reconfig lost state: %d entries before, %d after", before, after)
	}
	h.record(ci, "reconfig", fmt.Sprintf("div=%.2f epoch=%d plan={%s}", div, rec.Epoch, rec.Plan))
}
