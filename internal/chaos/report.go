// Report and reproduction support for the chaos soak. A run's Report is
// deterministic modulo wall-clock fields: Fingerprint folds every
// behavioral observable (event timeline, packet and state accounting,
// oracle verdicts) into one string, so two runs with the same Options must
// produce byte-identical fingerprints — the reproducibility contract the
// test matrix asserts and the ReproCommand relies on.
package chaos

import (
	"fmt"
	"strings"
)

// EventRecord is one scheduled or reactive event the harness executed, at
// the chunk boundary it fired.
type EventRecord struct {
	Chunk  int    `json:"chunk"`
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

// Report is the outcome of one chaos soak.
type Report struct {
	// Reproduction identity: the knobs that determine behavior.
	Seed     int64  `json:"seed"`
	Topology string `json:"topology"`
	Packets  int    `json:"packets"`
	Chunk    int    `json:"chunk"`
	Replicas int    `json:"replicas"`
	// Discipline is the discipline the engine actually executed
	// ("locks" or "replication"); Fallback lists the reasons when a
	// requested replication plane fell back to locks.
	Discipline string   `json:"discipline"`
	Fallback   []string `json:"fallback,omitempty"`

	// Engine-lifetime packet accounting at the end of the soak.
	Injected  int64 `json:"injected"`
	Delivered int64 `json:"delivered"`
	Dropped   int64 `json:"dropped"`
	// DegradedDrops are the drops observed during open failure windows
	// (failure injected, failover not yet run) — the explained share of
	// Dropped. Every other window must drop nothing.
	DegradedDrops int64 `json:"degradedDrops"`

	// State accounting across failovers: entries restored from replicas,
	// variables promoted to backup owners, and the bounded losses
	// (unreplicated entries, replica-lag writes) FailoverStats explains.
	RecoveredEntries int   `json:"recoveredEntries"`
	PromotedVars     int   `json:"promotedVars"`
	LostEntries      int   `json:"lostEntries"`
	LostWrites       int64 `json:"lostWrites"`

	// Events is the executed timeline.
	Events []EventRecord `json:"events"`

	// Containment accounting, populated when Faults is set: injected
	// control-plane and worker faults must be absorbed by exactly these
	// rollback/retry/containment paths, so the counts are deterministic
	// and fingerprinted.
	Faults          bool  `json:"faults,omitempty"`
	Rollbacks       int64 `json:"rollbacks,omitempty"`
	Retries         int64 `json:"retries,omitempty"`
	ContainedPanics int64 `json:"containedPanics,omitempty"`

	// Differential-oracle accounting: sampled probe flows compared in
	// lockstep, full state-equality audits, and resyncs after windows the
	// shadow store cannot track (open failure windows, lossy failovers).
	OracleProbes      int `json:"oracleProbes"`
	OracleStateAudits int `json:"oracleStateAudits"`
	OracleResyncs     int `json:"oracleResyncs"`

	// Violations lists every invariant breach, tagged with the chunk
	// boundary that detected it. Empty means the soak passed.
	Violations []string `json:"violations,omitempty"`

	// Timing (excluded from the fingerprint): nanoseconds spent inside
	// InjectReplay and the sustained packets-per-second under churn.
	EngineNs int64   `json:"engineNs"`
	PPS      float64 `json:"pps"`
}

// Fingerprint folds every deterministic observable into one string: two
// runs with identical Options must return byte-identical fingerprints.
// Wall-clock-dependent fields (EngineNs, PPS, LostWrites) are excluded.
func (r *Report) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d topo=%s packets=%d chunk=%d k=%d disc=%s\n",
		r.Seed, r.Topology, r.Packets, r.Chunk, r.Replicas, r.Discipline)
	fmt.Fprintf(&b, "injected=%d delivered=%d dropped=%d degraded-drops=%d\n",
		r.Injected, r.Delivered, r.Dropped, r.DegradedDrops)
	// LostWrites is deliberately excluded: mirror replication drains
	// asynchronously, so how many lagged writes a failure catches in
	// flight is wall-clock-dependent — the invariant the soak audits is
	// that the loss is *explained*, not its exact size.
	fmt.Fprintf(&b, "recovered=%d promoted=%d lost-entries=%d\n",
		r.RecoveredEntries, r.PromotedVars, r.LostEntries)
	for _, e := range r.Events {
		fmt.Fprintf(&b, "event chunk=%d kind=%s %s\n", e.Chunk, e.Kind, e.Detail)
	}
	if r.Faults {
		fmt.Fprintf(&b, "faults=%v rollbacks=%d retries=%d contained-panics=%d\n",
			r.Faults, r.Rollbacks, r.Retries, r.ContainedPanics)
	}
	fmt.Fprintf(&b, "oracle probes=%d audits=%d resyncs=%d\n",
		r.OracleProbes, r.OracleStateAudits, r.OracleResyncs)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "violation %s\n", v)
	}
	return b.String()
}

// ReproCommand renders the snapsim invocation that reproduces this run
// byte-for-byte; the test matrix prints it on failure.
func (r *Report) ReproCommand() string {
	var b strings.Builder
	fmt.Fprintf(&b, "go run ./cmd/snapsim -chaos -seed %d -packets %d -chunk %d -topo %s",
		r.Seed, r.Packets, r.Chunk, r.Topology)
	if r.Replicas > 1 {
		fmt.Fprintf(&b, " -k %d", r.Replicas)
	}
	if r.Discipline == "replication" {
		b.WriteString(" -replication")
	}
	if r.Faults {
		b.WriteString(" -faults")
	}
	return b.String()
}

// Passed reports whether the soak completed with zero invariant
// violations.
func (r *Report) Passed() bool { return len(r.Violations) == 0 }
