// The differential oracle: an independent shadow of the network's state,
// maintained by replaying every injected packet through the one-big-switch
// denotational semantics (internal/semantics.Eval) — the same reference the
// xFDD equivalence suites trust — never by copying engine internals. In any
// window the shadow can track (no open failure), the engine's merged global
// state must equal the shadow exactly at every quiescent boundary, and
// sampled probe flows injected in lockstep must produce exactly the
// delivery set the semantics predicts. Windows the shadow cannot track
// (failure injected but not yet failed over, failovers that lost
// unreplicated entries) end with an explicit, counted resync.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"

	"snap/internal/apps"
	"snap/internal/parser"
	"snap/internal/pkt"
	"snap/internal/semantics"
	"snap/internal/state"
	"snap/internal/syntax"
	"snap/internal/topo"
	"snap/internal/traffic"
	"snap/internal/values"
)

// policyVariants builds the rotation of soak policies for a network with n
// OBS ports. All variants share the same two delta-written state variables
// (count, flows) — so live policy edits re-place and migrate real entries
// instead of dropping them — and differ in the stateful inner program:
// unconditional counting, or counting gated on the packet's L4 ports. All
// variants forward every admitted packet (the inner program never drops),
// which is what lets the harness demand zero drops in healthy windows
// regardless of which variant is live.
func policyVariants(n int) []syntax.Policy {
	count := parser.MustParse(`count[inport]++`)
	flows := parser.MustParse(`flows[srcip]++`)
	inner := []syntax.Policy{
		syntax.Then(count, flows),
		syntax.Then(
			syntax.Cond(syntax.FieldEq(pkt.DstPort, values.Int(80)), count, syntax.Identity{}),
			flows,
		),
		syntax.Then(
			count,
			syntax.Cond(syntax.FieldEq(pkt.DstPort, values.Int(53)), flows, syntax.Identity{}),
		),
	}
	out := make([]syntax.Policy, len(inner))
	for i, p := range inner {
		out[i] = syntax.Then(apps.Assumption(n), syntax.Then(p, apps.AssignEgress(n)))
	}
	return out
}

// flowPacket builds the packet a churn-trace flow injects: ingress at port
// u from subnet 10.0.u.0/24 (honoring the operator assumption), destined
// to subnet 10.0.v.0/24 (so AssignEgress forwards it out port v), with
// host address and L4 ports derived from the flow identity — recycling
// identities is what turns over the flows[srcip] state keys. The host
// space is capped at 32 per subnet: enough for real key churn, small
// enough that the shadow store the differential oracle drags through
// semantics.Eval (which clones the store at every AST node) stays cheap.
func flowPacket(u, v int, id uint32) pkt.Packet {
	host := byte(1 + id%32)
	return pkt.New(map[pkt.Field]values.Value{
		pkt.Inport:  values.Int(int64(u)),
		pkt.SrcIP:   values.IPv4(10, 0, byte(u), host),
		pkt.DstIP:   values.IPv4(10, 0, byte(v), 1),
		pkt.SrcPort: values.Int(int64(1024 + id%4096)),
		pkt.DstPort: values.Int([]int64{53, 80, 443}[id%3]),
	})
}

// drawPair samples one demand-proportional port pair, deterministically
// per rng state; ok is false when the matrix has no positive demand.
func drawPair(m traffic.Matrix, rng *rand.Rand) (pair [2]int, ok bool) {
	pairs := m.Pairs()
	cum := make([]float64, 0, len(pairs))
	var total float64
	kept := pairs[:0]
	for _, p := range pairs {
		if d := m[p]; d > 0 {
			total += d
			kept = append(kept, p)
			cum = append(cum, total)
		}
	}
	if len(kept) == 0 || total <= 0 {
		return pair, false
	}
	j := sort.SearchFloat64s(cum, rng.Float64()*total)
	if j >= len(kept) {
		j = len(kept) - 1
	}
	return kept[j], true
}

// oracle is the shadow semantics store plus its tracking status.
type oracle struct {
	policy syntax.Policy
	store  *state.Store
	// synced is true while the shadow tracks the engine exactly; an open
	// failure window (in-flight copies dropped mid-policy) or a lossy
	// failover breaks tracking until the next resync.
	synced bool
}

// eval advances the shadow by one packet and returns the delivery keys
// ("port|packetKey") the semantics predicts on the given topology.
func (o *oracle) eval(t *topo.Topology, p pkt.Packet) (map[string]bool, error) {
	res, err := semantics.Eval(o.policy, o.store, p)
	if err != nil {
		return nil, err
	}
	o.store = res.Store
	want := map[string]bool{}
	for _, wp := range res.Packets {
		out := wp.Field(pkt.Outport)
		if out.Kind != values.KindInt {
			continue
		}
		if _, ok := t.PortByID(int(out.Num)); !ok {
			continue
		}
		want[fmt.Sprintf("%d|%s", out.Num, wp.Key())] = true
	}
	return want, nil
}

// entryCount sums the state entries across every variable of a store.
func entryCount(st *state.Store) int {
	n := 0
	for _, v := range st.Vars() {
		n += len(st.Entries(v))
	}
	return n
}
