package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("test_pkts_total", "pkts", "outcome").With("delivered").Add(11)
	r.Spans.Record(Span{Kind: "failover", Duration: time.Millisecond})

	s, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if code, body := get(t, s.URL()+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	code, body := get(t, s.URL()+"/metrics")
	if code != 200 || !strings.Contains(body, `test_pkts_total{outcome="delivered"} 11`) {
		t.Fatalf("/metrics: %d\n%s", code, body)
	}
	code, body = get(t, s.URL()+"/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars: %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/debug/vars is not a Snapshot: %v", err)
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Kind != "failover" {
		t.Fatalf("/debug/vars spans: %+v", snap.Spans)
	}
	if code, body := get(t, s.URL()+"/debug/pprof/heap?debug=1"); code != 200 || len(body) == 0 {
		t.Fatalf("/debug/pprof/heap: %d", code)
	}
}

// TestServerCloseIdempotentNoLeak proves the listener's lifecycle cannot
// mask goroutine leaks: serving and closing (twice) returns the process
// to its baseline goroutine count.
func TestServerCloseIdempotentNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		s, err := Serve("127.0.0.1:0", NewRegistry())
		if err != nil {
			t.Fatal(err)
		}
		if code, _ := get(t, s.URL()+"/healthz"); code != 200 {
			t.Fatalf("healthz: %d", code)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("second close: %v", err)
		}
	}
	if err := settleGoroutines(baseline, 2*time.Second); err != nil {
		t.Fatal(err)
	}
}

// settleGoroutines waits for the goroutine count to return to at most
// baseline (HTTP keep-alive teardown is asynchronous).
func settleGoroutines(baseline int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("goroutines did not settle: %d, baseline %d", n, baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
