package telemetry

import "runtime"

// registerProcessMetrics adds the Go runtime collectors every registry
// carries: cheap scrape-time reads that make any telemetry endpoint
// useful for leak hunting even before domain metrics exist.
func registerProcessMetrics(r *Registry) {
	r.GaugeFunc("snap_go_goroutines", "Live goroutines in the process.", nil, func(emit Emit) {
		emit(nil, float64(runtime.NumGoroutine()))
	})
	r.GaugeFunc("snap_go_heap_alloc_bytes", "Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).", nil, func(emit Emit) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		emit(nil, float64(ms.HeapAlloc))
	})
	r.CounterFunc("snap_go_gc_cycles_total", "Completed GC cycles (runtime.MemStats.NumGC).", nil, func(emit Emit) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		emit(nil, float64(ms.NumGC))
	})
}
