package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Sampler is the 1-in-N packet-trace gate. All methods are nil-receiver
// safe — an engine with sampling off holds a nil sampler and Hit is a
// single branch, which is the entire hot-path cost of the disabled
// feature.
type Sampler struct {
	n   uint64
	ctr atomic.Uint64
}

// NewSampler gates 1 in n events (n <= 0 → nil: never hit; n == 1:
// always hit).
func NewSampler(n int) *Sampler {
	if n <= 0 {
		return nil
	}
	return &Sampler{n: uint64(n)}
}

// Hit reports whether this event is sampled.
func (s *Sampler) Hit() bool {
	if s == nil {
		return false
	}
	return (s.ctr.Add(1)-1)%s.n == 0
}

// HopRecord is one switch visit of a traced packet copy: where it ran,
// how the visit ended, and the state variable involved when the visit
// suspended for remote state.
type HopRecord struct {
	Switch   int    `json:"switch"`
	Outcome  string `json:"outcome"` // "forward", "suspend", "deliver", "drop"
	StateVar string `json:"state_var,omitempty"`
	Egress   int    `json:"egress,omitempty"`
}

// TraceRecord is one completed sampled packet: its hop-by-hop path
// (multicast copies interleave in visit order), the state ops it touched,
// and the inject-to-deliver latency.
type TraceRecord struct {
	Seq     int64         `json:"seq"` // injection ordinal at sampling time
	Ingress int           `json:"ingress"`
	Start   time.Time     `json:"start"`
	Latency time.Duration `json:"latency"`
	Hops    []HopRecord   `json:"hops"`
}

// PacketTrace is one in-flight sampled packet. Hops may be appended from
// several goroutines (multicast copies run concurrently), so appends are
// mutex-guarded; the trace is committed to the ring at Finish.
type PacketTrace struct {
	log *TraceLog
	mu  sync.Mutex
	rec TraceRecord
}

// TraceLog is the bounded ring of completed packet traces.
type TraceLog struct {
	mu      sync.Mutex
	cap     int
	buf     []TraceRecord
	next    int
	sampled atomic.Int64
}

// NewTraceLog builds a ring retaining the most recent capacity traces
// (capacity <= 0 → 256).
func NewTraceLog(capacity int) *TraceLog {
	if capacity <= 0 {
		capacity = 256
	}
	return &TraceLog{cap: capacity}
}

// Start opens a trace for one sampled injection. The returned trace is
// live until Finish; it allocates, which is fine — only sampled packets
// (1 in N, default never) pay it.
func (l *TraceLog) Start(ingress int, seq int64) *PacketTrace {
	l.sampled.Add(1)
	return &PacketTrace{log: l, rec: TraceRecord{Seq: seq, Ingress: ingress, Start: time.Now()}}
}

// Hop appends one switch visit.
func (t *PacketTrace) Hop(sw int, outcome, stateVar string, egress int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.rec.Hops = append(t.rec.Hops, HopRecord{Switch: sw, Outcome: outcome, StateVar: stateVar, Egress: egress})
	t.mu.Unlock()
}

// Finish stamps the latency (inject to last-copy retirement) and commits
// the trace to the ring.
func (t *PacketTrace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.rec.Latency = time.Since(t.rec.Start)
	rec := t.rec
	t.mu.Unlock()
	l := t.log
	l.mu.Lock()
	if len(l.buf) < l.cap {
		l.buf = append(l.buf, rec)
	} else {
		l.buf[l.next] = rec
	}
	l.next = (l.next + 1) % l.cap
	l.mu.Unlock()
}

// Sampled counts traces started over the log's lifetime (>= retained).
func (l *TraceLog) Sampled() int64 {
	if l == nil {
		return 0
	}
	return l.sampled.Load()
}

// Snapshot returns the retained completed traces oldest-first.
func (l *TraceLog) Snapshot() []TraceRecord {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]TraceRecord, 0, len(l.buf))
	if len(l.buf) < l.cap {
		return append(out, l.buf...)
	}
	out = append(out, l.buf[l.next:]...)
	return append(out, l.buf[:l.next]...)
}
