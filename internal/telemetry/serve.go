package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// NewHandler builds the HTTP face of a registry:
//
//	/metrics      Prometheus text exposition
//	/healthz      liveness ("ok")
//	/debug/vars   the JSON Snapshot (metrics + spans + traces)
//	/debug/pprof  the standard runtime profiles
//
// The future snapd daemon mounts this same handler; until then Serve
// hosts it from snapsim/snapbench/the chaos soak.
func NewHandler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Snapshot())
	})
	// pprof is wired explicitly so the handler works on a private mux
	// (the package-level handlers register only on DefaultServeMux).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running telemetry listener. Close is idempotent.
type Server struct {
	ln     net.Listener
	srv    *http.Server
	closed sync.Once
	err    error
}

// Serve starts the telemetry endpoint on addr (e.g. ":9090",
// "127.0.0.1:0") for the given registry and returns once the listener is
// bound — scrapes succeed from the moment it returns.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           NewHandler(reg),
			ReadHeaderTimeout: 10 * time.Second,
		},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (resolving ":0" ports).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the http base URL of the listener.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close shuts the listener and its connections down. Safe to call more
// than once; later calls return the first result.
func (s *Server) Close() error {
	s.closed.Do(func() { s.err = s.srv.Close() })
	return s.err
}
