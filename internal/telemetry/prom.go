package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus encodes every registered family in the Prometheus text
// exposition format (version 0.0.4). HELP and TYPE lines are emitted even
// for families with no samples yet, so a scraper (or a CI grep) can
// assert a series is wired before traffic has exercised it.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshotFamilies() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.gather() {
			if err := writeSample(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSample(w io.Writer, f *family, s sample) error {
	if s.hist == nil {
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, s.labelValues, "", ""), formatFloat(s.value))
		return err
	}
	// Histogram: cumulative buckets (only boundaries where the count
	// advances, to keep output compact), then +Inf, _sum, _count.
	h := s.hist
	cum := int64(0)
	for i := 0; i < histBuckets; i++ {
		if h.counts[i] == 0 {
			continue
		}
		cum += h.counts[i]
		le := formatFloat(h.upperBound(i))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, s.labelValues, "le", le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, s.labelValues, "le", "+Inf"), h.count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.labels, s.labelValues, "", ""), formatFloat(float64(h.sum)*h.scale)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labels, s.labelValues, "", ""), h.count)
	return err
}

// labelString renders {k="v",...}, appending the extra pair (the
// histogram "le") when set; empty when there are no labels at all.
func labelString(names, values []string, extraK, extraV string) string {
	if len(names) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteString(`"`)
	}
	if extraK != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraK)
		b.WriteString(`="`)
		b.WriteString(extraV)
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

func formatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
