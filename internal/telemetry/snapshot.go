package telemetry

import "encoding/json"

// Snapshot is the JSON form of a registry scrape: every metric family's
// samples, plus the span log and any sampled packet traces. It is what
// /debug/vars serves and what snapsim -stats-json writes.
type Snapshot struct {
	Metrics []MetricSnapshot `json:"metrics"`
	Spans   []Span           `json:"spans,omitempty"`
	Traces  []TraceRecord    `json:"traces,omitempty"`
}

// MetricSnapshot is one family's scrape.
type MetricSnapshot struct {
	Name    string           `json:"name"`
	Help    string           `json:"help,omitempty"`
	Kind    string           `json:"kind"`
	Samples []SampleSnapshot `json:"samples,omitempty"`
}

// SampleSnapshot is one (labels, value) point; histograms carry their
// non-empty buckets plus sum and count instead of a scalar value.
type SampleSnapshot struct {
	Labels  map[string]string `json:"labels,omitempty"`
	Value   float64           `json:"value"`
	Buckets []BucketCount     `json:"buckets,omitempty"`
	Sum     float64           `json:"sum,omitempty"`
	Count   int64             `json:"count,omitempty"`
}

// BucketCount is one non-empty histogram bucket: the inclusive upper
// bound (in output units) and the non-cumulative count it holds.
type BucketCount struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// Snapshot gathers every family (func collectors included), the span log,
// and the trace ring into one structured snapshot.
func (r *Registry) Snapshot() Snapshot {
	fams := r.snapshotFamilies()
	out := Snapshot{Metrics: make([]MetricSnapshot, 0, len(fams))}
	for _, f := range fams {
		ms := MetricSnapshot{Name: f.name, Help: f.help, Kind: f.kind.String()}
		for _, s := range f.gather() {
			ss := SampleSnapshot{Value: s.value}
			if len(f.labels) > 0 {
				ss.Labels = make(map[string]string, len(f.labels))
				for i, n := range f.labels {
					if i < len(s.labelValues) {
						ss.Labels[n] = s.labelValues[i]
					}
				}
			}
			if s.hist != nil {
				ss.Value = 0
				ss.Sum = float64(s.hist.sum) * s.hist.scale
				ss.Count = s.hist.count
				for i := 0; i < histBuckets; i++ {
					if c := s.hist.counts[i]; c > 0 {
						ss.Buckets = append(ss.Buckets, BucketCount{LE: s.hist.upperBound(i), Count: c})
					}
				}
			}
			ms.Samples = append(ms.Samples, ss)
		}
		out.Metrics = append(out.Metrics, ms)
	}
	if r.Spans != nil {
		out.Spans = r.Spans.Snapshot()
	}
	if r.Traces != nil {
		out.Traces = r.Traces.Snapshot()
	}
	return out
}

// MarshalJSON is the indent-free encoding used by /debug/vars.
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}
