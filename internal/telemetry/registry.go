// Package telemetry is the repo's dependency-free observability substrate:
// a metrics registry (counters, gauges, power-of-two-bucket histograms), a
// bounded span log for control-plane phase timings, a sampled packet-trace
// ring, and an HTTP face (serve.go) exposing Prometheus text, a JSON
// snapshot, and net/http/pprof.
//
// The design constraint is the engine's zero-alloc packet loop: every
// write-side instrument is a plain atomic operation on a pre-resolved
// handle — Counter.Add and Gauge.Set are one atomic add/store,
// Histogram.Observe is two atomic adds into a value-hashed shard — and no
// instrument ever allocates after registration. All aggregation (bucket
// summing, label joining, text encoding) happens on the scrape side, which
// is also where func-backed metrics run: the engine registers collectors
// that read its *existing* atomics at scrape time, so steady-state packet
// processing pays nothing for being observable.
//
// The registry is not global: each Engine owns one (parallel tests, and
// later multiple engines per process, must not collide), and the HTTP
// server serves whichever registry it was given.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's type, deciding its Prometheus TYPE line and
// snapshot shape.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

// Counter is a monotonically increasing metric. The zero value is ready.
type Counter struct{ v atomic.Int64 }

// Add increments the counter; Inc is Add(1).
func (c *Counter) Add(n int64) { c.v.Add(n) }
func (c *Counter) Inc()        { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a point-in-time value that may go up or down.
type Gauge struct{ v atomic.Int64 }

func (g *Gauge) Set(n int64)  { g.v.Store(n) }
func (g *Gauge) Add(n int64)  { g.v.Add(n) }
func (g *Gauge) Value() int64 { return g.v.Load() }

// Emit is the callback a func-backed metric uses to report samples at
// scrape time: one call per (label values, value) pair.
type Emit func(labelValues []string, value float64)

// child is one labeled instance inside a family.
type child struct {
	labelValues []string
	c           *Counter
	g           *Gauge
	h           *Histogram
}

// family is one registered metric name: its metadata plus either live
// children (label-value → instrument) or a scrape-time collector.
type family struct {
	name   string
	help   string
	kind   Kind
	scale  float64 // multiplies raw int64 observations on output (histograms, func-less)
	labels []string

	mu       sync.Mutex
	children map[string]*child
	order    []string // child keys in first-registration order

	collect func(emit Emit) // func-backed: overrides children at scrape
}

// childKey joins label values unambiguously (label values never contain
// \xff in this codebase's usage — variable names, scenario slugs).
func childKey(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	n := 0
	for _, v := range values {
		n += len(v) + 1
	}
	b := make([]byte, 0, n)
	for i, v := range values {
		if i > 0 {
			b = append(b, '\xff')
		}
		b = append(b, v...)
	}
	return string(b)
}

func (f *family) child(values []string) *child {
	key := childKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch, ok := f.children[key]; ok {
		return ch
	}
	ch := &child{labelValues: append([]string(nil), values...)}
	switch f.kind {
	case KindCounter:
		ch.c = &Counter{}
	case KindGauge:
		ch.g = &Gauge{}
	case KindHistogram:
		ch.h = newHistogram(f.scale)
	}
	if f.children == nil {
		f.children = map[string]*child{}
	}
	f.children[key] = ch
	f.order = append(f.order, key)
	return ch
}

// Registry holds metric families in registration order, plus the optional
// span log and trace ring the JSON snapshot folds in.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family

	// Spans is the bounded control-plane event log (NewRegistry installs
	// one); Traces is the sampled packet-trace ring (nil until a trace
	// producer installs one).
	Spans  *SpanLog
	Traces *TraceLog
}

// NewRegistry builds an empty registry with a span log and the process
// collectors (goroutines, heap, GC) pre-registered.
func NewRegistry() *Registry {
	r := &Registry{byName: map[string]*family{}, Spans: NewSpanLog(256)}
	registerProcessMetrics(r)
	return r
}

// register returns the family for name, creating it when new. Registration
// is idempotent — a second registration of the same name returns the
// existing family — but re-registering under a different kind is a
// programming error and panics.
func (r *Registry) register(name, help string, kind Kind, scale float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic("telemetry: metric " + name + " re-registered as a different kind")
		}
		return f
	}
	if scale == 0 {
		scale = 1
	}
	f := &family{name: name, help: help, kind: kind, scale: scale, labels: append([]string(nil), labels...)}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// Counter returns the plain (label-less) counter for name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, KindCounter, 1, nil).child(nil).c
}

// Gauge returns the plain gauge for name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, KindGauge, 1, nil).child(nil).g
}

// Histogram returns the plain histogram for name. scale converts raw
// observed int64s to the exported unit (1e-9 for nanosecond durations
// exported as seconds; 0 → 1).
func (r *Registry) Histogram(name, help string, scale float64) *Histogram {
	return r.register(name, help, KindHistogram, scale, nil).child(nil).h
}

// CounterVec is a labeled counter family; resolve children once with With
// and hold the handle on hot paths.
type CounterVec struct{ f *family }

func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, KindCounter, 1, labels)}
}
func (v *CounterVec) With(labelValues ...string) *Counter { return v.f.child(labelValues).c }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, KindGauge, 1, labels)}
}
func (v *GaugeVec) With(labelValues ...string) *Gauge { return v.f.child(labelValues).g }

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

func (r *Registry) HistogramVec(name, help string, scale float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, KindHistogram, scale, labels)}
}
func (v *HistogramVec) With(labelValues ...string) *Histogram { return v.f.child(labelValues).h }

// CounterFunc registers a scrape-time collector exported as a counter:
// collect is called on every scrape and emits (label values, value)
// samples. The engine uses these to expose its existing atomics with zero
// hot-path cost.
func (r *Registry) CounterFunc(name, help string, labels []string, collect func(emit Emit)) {
	r.register(name, help, KindCounter, 1, labels).collect = collect
}

// GaugeFunc is CounterFunc with gauge semantics.
func (r *Registry) GaugeFunc(name, help string, labels []string, collect func(emit Emit)) {
	r.register(name, help, KindGauge, 1, labels).collect = collect
}

// sample is one gathered (labels, value) point; hsnap is set for
// histogram children.
type sample struct {
	labelValues []string
	value       float64
	hist        *histSnapshot
}

// gather snapshots one family's samples. Func-backed families run their
// collector; live families walk children in registration order.
func (f *family) gather() []sample {
	if f.collect != nil {
		var out []sample
		f.collect(func(lv []string, v float64) {
			out = append(out, sample{labelValues: append([]string(nil), lv...), value: v})
		})
		return out
	}
	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	children := make([]*child, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.Unlock()
	out := make([]sample, 0, len(children))
	for _, ch := range children {
		s := sample{labelValues: ch.labelValues}
		switch f.kind {
		case KindCounter:
			s.value = float64(ch.c.Value()) * f.scale
		case KindGauge:
			s.value = float64(ch.g.Value()) * f.scale
		case KindHistogram:
			hs := ch.h.snapshot()
			s.hist = &hs
		}
		out = append(out, s)
	}
	return out
}

// snapshotFamilies returns the families in registration order (stable
// scrape output).
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*family(nil), r.families...)
}

// Names lists the registered metric names, sorted (diagnostics/tests).
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for _, f := range r.families {
		names = append(names, f.name)
	}
	sort.Strings(names)
	return names
}
