package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// histBuckets is the bucket count of every histogram: bucket i holds
// observations v with 2^(i-1) < v <= 2^i (bucket 0 holds v <= 1, the
// final bucket tops out at 2^63-1 = MaxInt64, so there is no overflow
// bucket to track separately — +Inf is emitted with the same cumulative
// count as the last bucket).
const histBuckets = 64

// histShards spreads concurrent Observe calls across cache lines. The
// shard is picked by the low bits of the observed value — free entropy
// for the timing observations these histograms record, so two workers
// observing different waits land on different shards, while a snapshot
// just sums across shards. Must be a power of two.
const histShards = 4

type histShard struct {
	counts [histBuckets]atomic.Int64
	sum    atomic.Int64
	// pad keeps neighbouring shards' hot words off one cache line.
	_ [6]int64
}

// Histogram counts observations into power-of-two buckets. Observe is
// allocation-free and lock-free: one atomic add on the bucket, one on the
// shard sum. The zero value is NOT ready — histograms come from a
// Registry (which fixes the output scale).
type Histogram struct {
	scale  float64
	shards [histShards]histShard
}

func newHistogram(scale float64) *Histogram {
	if scale == 0 {
		scale = 1
	}
	return &Histogram{scale: scale}
}

// bucketOf maps an observation to its bucket index: bits.Len64(v-1), so
// v in (2^(i-1), 2^i] lands in bucket i and v <= 1 (including zero and
// negatives) in bucket 0.
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v - 1))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// Observe records one value (raw units; the registry's scale converts on
// output — duration histograms observe nanoseconds and export seconds).
func (h *Histogram) Observe(v int64) {
	s := &h.shards[uint64(v)&(histShards-1)]
	s.counts[bucketOf(v)].Add(1)
	s.sum.Add(v)
}

// histSnapshot is a point-in-time sum over shards.
type histSnapshot struct {
	counts [histBuckets]int64
	sum    int64
	count  int64
	scale  float64
}

func (h *Histogram) snapshot() histSnapshot {
	out := histSnapshot{scale: h.scale}
	for i := range h.shards {
		s := &h.shards[i]
		for b := 0; b < histBuckets; b++ {
			c := s.counts[b].Load()
			out.counts[b] += c
			out.count += c
		}
		out.sum += s.sum.Load()
	}
	return out
}

// upperBound is bucket i's inclusive upper bound in output units.
func (s *histSnapshot) upperBound(i int) float64 {
	return math.Ldexp(1, i) * s.scale // 2^i * scale
}
