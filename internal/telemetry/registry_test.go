package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "events")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	// Registration is idempotent: same handle back.
	if r.Counter("test_events_total", "events") != c {
		t.Fatal("re-registering a counter returned a different handle")
	}
	if r.CounterVec("test_labeled_total", "l", "k").With("a") != r.CounterVec("test_labeled_total", "l", "k").With("a") {
		t.Fatal("labeled child not cached")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_x", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("test_x", "x")
}

// TestHistogramBucketBoundaries pins the power-of-two bucket map at its
// edges: zero/negative, exact powers of two, one past them, and MaxInt64.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{math.MinInt64, 0}, {-1, 0}, {0, 0}, {1, 0},
		{2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1024, 10}, {1025, 11},
		{1 << 62, 62}, {1<<62 + 1, 63}, {math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
	// A value in bucket i must satisfy v <= upperBound(i) and (for i>0)
	// v > upperBound(i-1): the "le" boundaries are honest.
	h := newHistogram(1)
	for _, v := range []int64{1, 2, 3, 4, 1023, 1024, 1025} {
		h.Observe(v)
		s := h.snapshot()
		b := bucketOf(v)
		if float64(v) > s.upperBound(b) {
			t.Errorf("v=%d above its bucket %d upper bound %g", v, b, s.upperBound(b))
		}
		if b > 0 && float64(v) <= s.upperBound(b-1) {
			t.Errorf("v=%d at or below bucket %d's lower boundary", v, b)
		}
	}
}

func TestHistogramSnapshotAndScale(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_wait_seconds", "wait", 1e-9)
	h.Observe(int64(time.Microsecond)) // 1000ns → bucket 10 (le 1024ns)
	h.Observe(int64(time.Microsecond))
	h.Observe(int64(time.Millisecond))
	s := h.snapshot()
	if s.count != 3 {
		t.Fatalf("count = %d, want 3", s.count)
	}
	wantSum := float64(2*time.Microsecond+time.Millisecond) / 1e9
	if got := float64(s.sum) * s.scale; math.Abs(got-wantSum) > 1e-12 {
		t.Fatalf("scaled sum = %g, want %g", got, wantSum)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE test_wait_seconds histogram",
		`test_wait_seconds_bucket{le="+Inf"} 3`,
		"test_wait_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Buckets must be cumulative: the 1ms observation's bucket line
	// carries all three observations.
	if !strings.Contains(out, fmt.Sprintf(`test_wait_seconds_bucket{le="%g"} 3`, math.Ldexp(1, bucketOf(int64(time.Millisecond)))*1e-9)) {
		t.Errorf("cumulative bucket line missing:\n%s", out)
	}
}

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_plain_total", "plain").Add(2)
	r.CounterVec("test_pkts_total", "pkts", "outcome").With("delivered").Add(9)
	r.GaugeFunc("test_func_gauge", "f", []string{"kind"}, func(emit Emit) {
		emit([]string{"a"}, 1.5)
	})
	// An empty family must still emit HELP/TYPE so scrapers can assert
	// the series is wired.
	r.HistogramVec("test_empty_seconds", "empty", 1e-9, "var")

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP test_plain_total plain",
		"# TYPE test_plain_total counter",
		"test_plain_total 2",
		`test_pkts_total{outcome="delivered"} 9`,
		`test_func_gauge{kind="a"} 1.5`,
		"# TYPE test_empty_seconds histogram",
		"snap_go_goroutines",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestJSONSnapshot(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("test_pkts_total", "pkts", "outcome").With("dropped").Add(3)
	r.Histogram("test_lat_seconds", "lat", 1e-9).Observe(500)
	r.Spans.Record(Span{Kind: "reconfig", Scenario: "topotm", Duration: time.Millisecond})

	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	found := false
	for _, m := range snap.Metrics {
		if m.Name == "test_pkts_total" {
			found = true
			if len(m.Samples) != 1 || m.Samples[0].Labels["outcome"] != "dropped" || m.Samples[0].Value != 3 {
				t.Fatalf("bad sample: %+v", m.Samples)
			}
		}
		if m.Name == "test_lat_seconds" {
			if len(m.Samples) != 1 || m.Samples[0].Count != 1 || len(m.Samples[0].Buckets) != 1 {
				t.Fatalf("bad histogram sample: %+v", m.Samples)
			}
		}
	}
	if !found {
		t.Fatal("labeled counter missing from snapshot")
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Kind != "reconfig" {
		t.Fatalf("span log missing from snapshot: %+v", snap.Spans)
	}
}

// TestConcurrentWriteWhileScrape hammers every instrument kind from many
// goroutines while the main goroutine scrapes both encodings; run under
// -race this is the registry's memory-model gate. Final totals must be
// exact — no update may be lost to a concurrent scrape.
func TestConcurrentWriteWhileScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_c_total", "c")
	cv := r.CounterVec("test_cv_total", "cv", "k")
	g := r.Gauge("test_g", "g")
	h := r.HistogramVec("test_h_seconds", "h", 1e-9, "var")

	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			child := cv.With(fmt.Sprintf("w%d", w%3))
			hist := h.With("var")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				child.Inc()
				g.Set(int64(i))
				hist.Observe(int64(i * 17))
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for scraping := true; scraping; {
		select {
		case <-done:
			scraping = false
		default:
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Errorf("scrape: %v", err)
			}
			_ = r.Snapshot()
		}
	}

	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter lost updates: %d, want %d", got, workers*perWorker)
	}
	var total int64
	for _, k := range []string{"w0", "w1", "w2"} {
		total += cv.With(k).Value()
	}
	if total != workers*perWorker {
		t.Fatalf("labeled counters lost updates: %d, want %d", total, workers*perWorker)
	}
	if s := h.With("var").snapshot(); s.count != workers*perWorker {
		t.Fatalf("histogram lost observations: %d, want %d", s.count, workers*perWorker)
	}
}

// TestInstrumentsAllocFree is the write-side alloc guard: resolved
// handles must observe without allocating, or the instrumented packet
// loop would stop being zero-alloc.
func TestInstrumentsAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_c_total", "c")
	g := r.Gauge("test_g", "g")
	h := r.Histogram("test_h_seconds", "h", 1e-9)
	lc := r.CounterVec("test_cv_total", "cv", "k").With("a")
	lh := r.HistogramVec("test_hv_seconds", "hv", 1e-9, "k").With("a")

	var i int64
	for name, fn := range map[string]func(){
		"Counter.Add":               func() { c.Add(1) },
		"Gauge.Set":                 func() { g.Set(i) },
		"Histogram.Observe":         func() { h.Observe(i * 31) },
		"labeled Counter.Add":       func() { lc.Add(1) },
		"labeled Histogram.Observe": func() { lh.Observe(i * 31) },
		"Sampler miss":              func() { _ = (*Sampler)(nil).Hit() },
	} {
		i = 0
		if allocs := testing.AllocsPerRun(1000, func() { i++; fn() }); allocs != 0 {
			t.Errorf("%s allocates %.1f per op, want 0", name, allocs)
		}
	}
}

func TestSpanLogBounded(t *testing.T) {
	l := NewSpanLog(4)
	for i := 0; i < 10; i++ {
		l.Record(Span{Kind: fmt.Sprintf("e%d", i)})
	}
	got := l.Snapshot()
	if len(got) != 4 {
		t.Fatalf("retained %d spans, want 4", len(got))
	}
	for i, s := range got {
		if want := fmt.Sprintf("e%d", 6+i); s.Kind != want {
			t.Fatalf("span[%d] = %s, want %s (oldest-first eviction)", i, s.Kind, want)
		}
	}
	if l.Total() != 10 {
		t.Fatalf("total = %d, want 10", l.Total())
	}
}

func TestTraceLogRing(t *testing.T) {
	l := NewTraceLog(2)
	for i := 0; i < 3; i++ {
		tr := l.Start(i, int64(i))
		tr.Hop(5, "forward", "", -1)
		tr.Hop(6, "deliver", "", 100+i)
		tr.Finish()
	}
	got := l.Snapshot()
	if len(got) != 2 {
		t.Fatalf("retained %d traces, want 2", len(got))
	}
	if got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("wrong traces retained: %+v", got)
	}
	if len(got[1].Hops) != 2 || got[1].Hops[1].Outcome != "deliver" || got[1].Hops[1].Egress != 102 {
		t.Fatalf("hops not recorded: %+v", got[1].Hops)
	}
	if got[1].Latency <= 0 {
		t.Fatalf("latency not stamped: %v", got[1].Latency)
	}
	if l.Sampled() != 3 {
		t.Fatalf("sampled = %d, want 3", l.Sampled())
	}
}

func TestSampler(t *testing.T) {
	s := NewSampler(4)
	hits := 0
	for i := 0; i < 40; i++ {
		if s.Hit() {
			hits++
		}
	}
	if hits != 10 {
		t.Fatalf("1-in-4 sampler hit %d of 40", hits)
	}
	if NewSampler(0) != nil {
		t.Fatal("NewSampler(0) must disable sampling (nil)")
	}
	one := NewSampler(1)
	for i := 0; i < 5; i++ {
		if !one.Hit() {
			t.Fatal("1-in-1 sampler must always hit")
		}
	}
}
