package telemetry

import (
	"sync"
	"time"
)

// Phase is one named sub-duration inside a span (a compiler phase, the
// swap latency).
type Phase struct {
	Name     string        `json:"name"`
	Duration time.Duration `json:"duration"`
}

// Span records one completed control-plane event with its phase split:
// a drift reconfiguration, a failover, a restore, a policy apply.
type Span struct {
	// Kind is the event class ("reconfig", "failover", "restore",
	// "policy"); Scenario the compile scenario label it was recorded
	// under; Detail free-form context (the plan, the victim).
	Kind     string        `json:"kind"`
	Scenario string        `json:"scenario,omitempty"`
	Detail   string        `json:"detail,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
	Phases   []Phase       `json:"phases,omitempty"`
}

// SpanLog is a bounded in-memory ring of spans: recording never blocks
// beyond a short mutex and never grows past the capacity — the oldest
// spans fall off. Total counts every span ever recorded.
type SpanLog struct {
	mu    sync.Mutex
	cap   int
	buf   []Span
	next  int
	total int64
}

// NewSpanLog builds a ring holding the most recent capacity spans
// (capacity <= 0 → 256).
func NewSpanLog(capacity int) *SpanLog {
	if capacity <= 0 {
		capacity = 256
	}
	return &SpanLog{cap: capacity}
}

// Record appends one span, evicting the oldest past capacity.
func (l *SpanLog) Record(s Span) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if len(l.buf) < l.cap {
		l.buf = append(l.buf, s)
	} else {
		l.buf[l.next] = s
	}
	l.next = (l.next + 1) % l.cap
	l.total++
	l.mu.Unlock()
}

// Total counts spans recorded over the log's lifetime (recorded minus
// retained = evicted).
func (l *SpanLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Snapshot returns the retained spans oldest-first.
func (l *SpanLog) Snapshot() []Span {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Span, 0, len(l.buf))
	if len(l.buf) < l.cap {
		return append(out, l.buf...)
	}
	out = append(out, l.buf[l.next:]...)
	return append(out, l.buf[:l.next]...)
}
