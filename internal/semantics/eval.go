// Package semantics implements the denotational semantics of SNAP
// (Appendix A of the paper): the eval function mapping a policy, a store and
// a packet to an updated store, a set of output packets and a read/write
// log. It is the specification against which the compiler's xFDD translation
// and the distributed data plane are tested for equivalence.
package semantics

import (
	"fmt"

	"snap/internal/pkt"
	"snap/internal/state"
	"snap/internal/syntax"
	"snap/internal/values"
)

// Result is the outcome of evaluating a policy on one packet.
type Result struct {
	Store   *state.Store
	Packets []pkt.Packet
	Log     state.Log
}

// ConflictError reports an undefined composition (⊥ in the formal
// semantics): a read/write or write/write conflict between parallel branches
// or between the multicast copies of a sequential composition.
type ConflictError struct {
	Op   string
	Vars []string
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("inconsistent state access in %s composition: conflicting variables %v", e.Op, e.Vars)
}

// EvalExpr implements evale: expressions evaluate on a packet to a tuple of
// values (scalars are 1-tuples).
func EvalExpr(e syntax.Expr, p pkt.Packet) values.Tuple {
	switch x := e.(type) {
	case syntax.Const:
		return values.Tuple{x.Val}
	case syntax.FieldRef:
		return values.Tuple{p.Field(x.Field)}
	case syntax.TupleExpr:
		out := make(values.Tuple, 0, len(x.Elems))
		for _, el := range x.Elems {
			out = append(out, EvalExpr(el, p)...)
		}
		return out
	default:
		return nil
	}
}

// EvalScalar evaluates an expression expected to produce a single value
// (the right-hand side of a state test or update).
func EvalScalar(e syntax.Expr, p pkt.Packet) (values.Value, error) {
	t := EvalExpr(e, p)
	if len(t) != 1 {
		return values.None, fmt.Errorf("expression %s evaluates to a %d-vector where a scalar is required", e, len(t))
	}
	return t[0], nil
}

// Eval runs policy p on packet in with the given store, per the formal
// semantics. The returned store is freshly derived; the input store is not
// modified. Output packets form a set (duplicates are collapsed).
func Eval(p syntax.Policy, st *state.Store, in pkt.Packet) (Result, error) {
	return eval(p, st, in)
}

func eval(p syntax.Policy, st *state.Store, in pkt.Packet) (Result, error) {
	switch n := p.(type) {
	case syntax.Identity:
		return Result{Store: st.Clone(), Packets: []pkt.Packet{in}, Log: state.NewLog()}, nil

	case syntax.Drop:
		return Result{Store: st.Clone(), Packets: nil, Log: state.NewLog()}, nil

	case syntax.Test:
		out := Result{Store: st.Clone(), Log: state.NewLog()}
		if n.Val.Matches(in.Field(n.Field)) {
			out.Packets = []pkt.Packet{in}
		}
		return out, nil

	case syntax.StateTest:
		out := Result{Store: st.Clone(), Log: state.NewLog()}
		out.Log.Read(n.Var)
		want, err := EvalScalar(n.Val, in)
		if err != nil {
			return Result{}, err
		}
		if values.Eq(st.Get(n.Var, EvalExpr(n.Idx, in)), want) {
			out.Packets = []pkt.Packet{in}
		}
		return out, nil

	case syntax.Not:
		inner, err := eval(n.X, st, in)
		if err != nil {
			return Result{}, err
		}
		out := Result{Store: st.Clone(), Log: inner.Log}
		if len(inner.Packets) == 0 {
			out.Packets = []pkt.Packet{in}
		}
		return out, nil

	case syntax.Or:
		rx, err := eval(n.X, st, in)
		if err != nil {
			return Result{}, err
		}
		ry, err := eval(n.Y, st, in)
		if err != nil {
			return Result{}, err
		}
		rx.Log.Union(ry.Log)
		out := Result{Store: st.Clone(), Log: rx.Log}
		if len(rx.Packets) > 0 || len(ry.Packets) > 0 {
			out.Packets = []pkt.Packet{in}
		}
		return out, nil

	case syntax.And:
		rx, err := eval(n.X, st, in)
		if err != nil {
			return Result{}, err
		}
		ry, err := eval(n.Y, st, in)
		if err != nil {
			return Result{}, err
		}
		rx.Log.Union(ry.Log)
		out := Result{Store: st.Clone(), Log: rx.Log}
		if len(rx.Packets) > 0 && len(ry.Packets) > 0 {
			out.Packets = []pkt.Packet{in}
		}
		return out, nil

	case syntax.Modify:
		return Result{
			Store:   st.Clone(),
			Packets: []pkt.Packet{in.With(n.Field, n.Val)},
			Log:     state.NewLog(),
		}, nil

	case syntax.SetState:
		v, err := EvalScalar(n.Val, in)
		if err != nil {
			return Result{}, err
		}
		m := st.Clone()
		m.Set(n.Var, EvalExpr(n.Idx, in), v)
		out := Result{Store: m, Packets: []pkt.Packet{in}, Log: state.NewLog()}
		out.Log.Write(n.Var)
		return out, nil

	case syntax.Incr:
		m := st.Clone()
		m.Add(n.Var, EvalExpr(n.Idx, in), 1)
		out := Result{Store: m, Packets: []pkt.Packet{in}, Log: state.NewLog()}
		out.Log.Write(n.Var)
		return out, nil

	case syntax.Decr:
		m := st.Clone()
		m.Add(n.Var, EvalExpr(n.Idx, in), -1)
		out := Result{Store: m, Packets: []pkt.Packet{in}, Log: state.NewLog()}
		out.Log.Write(n.Var)
		return out, nil

	case syntax.If:
		cond, err := eval(n.Cond, st, in)
		if err != nil {
			return Result{}, err
		}
		var branch Result
		if len(cond.Packets) > 0 {
			branch, err = eval(n.Then, cond.Store, in)
		} else {
			branch, err = eval(n.Else, cond.Store, in)
		}
		if err != nil {
			return Result{}, err
		}
		branch.Log.Union(cond.Log)
		return branch, nil

	case syntax.Parallel:
		r1, err := eval(n.P, st, in)
		if err != nil {
			return Result{}, err
		}
		r2, err := eval(n.Q, st, in)
		if err != nil {
			return Result{}, err
		}
		if !state.Consistent(r1.Log, r2.Log) {
			return Result{}, &ConflictError{Op: "parallel", Vars: state.ConflictVars(r1.Log, r2.Log)}
		}
		merged := mergeStores(st, []*state.Store{r1.Store, r2.Store})
		r1.Log.Union(r2.Log)
		return Result{
			Store:   merged,
			Packets: unionPackets(r1.Packets, r2.Packets),
			Log:     r1.Log,
		}, nil

	case syntax.Seq:
		r1, err := eval(n.P, st, in)
		if err != nil {
			return Result{}, err
		}
		var (
			stores  []*state.Store
			logs    []state.Log
			packets []pkt.Packet
		)
		for _, mid := range r1.Packets {
			r2, err := eval(n.Q, r1.Store, mid)
			if err != nil {
				return Result{}, err
			}
			stores = append(stores, r2.Store)
			logs = append(logs, r2.Log)
			packets = unionPackets(packets, r2.Packets)
		}
		for i := range logs {
			for j := i + 1; j < len(logs); j++ {
				if !state.Consistent(logs[i], logs[j]) {
					return Result{}, &ConflictError{Op: "sequential", Vars: state.ConflictVars(logs[i], logs[j])}
				}
			}
		}
		merged := mergeStores(r1.Store, stores)
		log := r1.Log
		for _, l := range logs {
			log.Union(l)
		}
		return Result{Store: merged, Packets: packets, Log: log}, nil

	case syntax.Atomic:
		return eval(n.P, st, in)

	default:
		return Result{}, fmt.Errorf("eval: unknown policy node %T", p)
	}
}

// mergeStores implements merge(m, m1, ..., mk): for each variable, take its
// contents from the first store in which it differs from the base, otherwise
// keep the base contents. The callers' consistency checks guarantee at most
// one store changed any given variable.
func mergeStores(base *state.Store, stores []*state.Store) *state.Store {
	out := base.Clone()
	seen := map[string]bool{}
	for _, m := range stores {
		for _, s := range m.Vars() {
			if seen[s] {
				continue
			}
			if !base.VarEqual(m, s) {
				out.CopyVar(m, s)
				seen[s] = true
			}
		}
	}
	return out
}

// unionPackets forms the set union of two packet lists.
func unionPackets(a, b []pkt.Packet) []pkt.Packet {
	if len(b) == 0 {
		return a
	}
	seen := make(map[string]bool, len(a)+len(b))
	out := make([]pkt.Packet, 0, len(a)+len(b))
	for _, p := range append(append([]pkt.Packet{}, a...), b...) {
		k := p.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, p)
		}
	}
	return out
}
