package semantics_test

import (
	"errors"
	"testing"

	"snap/internal/pkt"
	"snap/internal/semantics"
	"snap/internal/state"
	"snap/internal/syntax"
	"snap/internal/values"
)

var basePkt = pkt.New(map[pkt.Field]values.Value{
	pkt.Inport:  values.Int(1),
	pkt.SrcIP:   values.IPv4(10, 0, 1, 1),
	pkt.DstIP:   values.IPv4(10, 0, 6, 6),
	pkt.SrcPort: values.Int(53),
	pkt.DstPort: values.Int(80),
})

func eval(t *testing.T, p syntax.Policy, st *state.Store, in pkt.Packet) semantics.Result {
	t.Helper()
	r, err := semantics.Eval(p, st, in)
	if err != nil {
		t.Fatalf("eval %s: %v", p, err)
	}
	return r
}

func TestIdentityAndDrop(t *testing.T) {
	st := state.NewStore()
	r := eval(t, syntax.Id(), st, basePkt)
	if len(r.Packets) != 1 || !r.Packets[0].Equal(basePkt) {
		t.Fatalf("id: %v", r.Packets)
	}
	r = eval(t, syntax.Nothing(), st, basePkt)
	if len(r.Packets) != 0 {
		t.Fatalf("drop: %v", r.Packets)
	}
}

func TestFieldTest(t *testing.T) {
	st := state.NewStore()
	pass := eval(t, syntax.FieldEq(pkt.SrcPort, values.Int(53)), st, basePkt)
	if len(pass.Packets) != 1 {
		t.Fatal("test should pass")
	}
	fail := eval(t, syntax.FieldEq(pkt.SrcPort, values.Int(80)), st, basePkt)
	if len(fail.Packets) != 0 {
		t.Fatal("test should fail")
	}
	// Prefix membership.
	prefix := eval(t, syntax.FieldEq(pkt.DstIP, values.Prefix(10<<24|6<<8, 24)), st, basePkt)
	if len(prefix.Packets) != 1 {
		t.Fatal("prefix test should pass")
	}
}

func TestStateTestDefaultsAndLogs(t *testing.T) {
	st := state.NewStore()
	// Absent entries read as False.
	p := syntax.TestState("s", syntax.F(pkt.SrcIP), syntax.V(values.Bool(false)))
	r := eval(t, p, st, basePkt)
	if len(r.Packets) != 1 {
		t.Fatal("absent entry must compare equal to False")
	}
	if !r.Log.Reads["s"] || len(r.Log.Writes) != 0 {
		t.Fatalf("state test must log R s only: %+v", r.Log)
	}
	// And to Int(0) via coercion.
	p0 := syntax.TestState("s", syntax.F(pkt.SrcIP), syntax.V(values.Int(0)))
	if r := eval(t, p0, st, basePkt); len(r.Packets) != 1 {
		t.Fatal("absent entry must compare equal to 0")
	}
}

func TestModification(t *testing.T) {
	st := state.NewStore()
	r := eval(t, syntax.Assign(pkt.Outport, values.Int(6)), st, basePkt)
	if got := r.Packets[0].Field(pkt.Outport); !values.Eq(got, values.Int(6)) {
		t.Fatalf("outport = %v", got)
	}
	// The input packet is untouched (value semantics).
	if !basePkt.Field(pkt.Outport).IsNone() {
		t.Fatal("input packet mutated")
	}
}

func TestStateUpdateAndCounters(t *testing.T) {
	st := state.NewStore()
	w := syntax.WriteState("s", syntax.F(pkt.SrcIP), syntax.F(pkt.DstIP))
	r := eval(t, w, st, basePkt)
	idx := values.Tuple{basePkt.Field(pkt.SrcIP)}
	if got := r.Store.Get("s", idx); !values.Eq(got, basePkt.Field(pkt.DstIP)) {
		t.Fatalf("stored %v", got)
	}
	if !r.Log.Writes["s"] {
		t.Fatalf("state write must log W s: %+v", r.Log)
	}
	// The input store is untouched.
	if got := st.Get("s", idx); !values.Eq(got, state.Default) {
		t.Fatal("input store mutated")
	}

	// Increment coerces the False default to 0.
	incr := syntax.IncrState("c", syntax.F(pkt.Inport))
	r = eval(t, incr, r.Store, basePkt)
	r = eval(t, incr, r.Store, basePkt)
	if got := r.Store.Get("c", values.Tuple{values.Int(1)}); !values.Eq(got, values.Int(2)) {
		t.Fatalf("counter = %v, want 2", got)
	}
	decr := syntax.DecrState("c", syntax.F(pkt.Inport))
	r = eval(t, decr, r.Store, basePkt)
	if got := r.Store.Get("c", values.Tuple{values.Int(1)}); !values.Eq(got, values.Int(1)) {
		t.Fatalf("counter = %v, want 1", got)
	}
}

func TestNegationPropagatesReads(t *testing.T) {
	st := state.NewStore()
	p := syntax.Neg(syntax.TestState("s", syntax.V(values.Int(0)), syntax.V(values.Bool(true))))
	r := eval(t, p, st, basePkt)
	if len(r.Packets) != 1 {
		t.Fatal("negated false test must pass")
	}
	if !r.Log.Reads["s"] {
		t.Fatal("negation must propagate the read log")
	}
}

func TestDisjunctionConjunction(t *testing.T) {
	st := state.NewStore()
	yes := syntax.FieldEq(pkt.SrcPort, values.Int(53))
	no := syntax.FieldEq(pkt.SrcPort, values.Int(99))
	sYes := syntax.TestState("a", syntax.V(values.Int(0)), syntax.V(values.Bool(false)))

	if r := eval(t, syntax.Disj(no, yes), st, basePkt); len(r.Packets) != 1 {
		t.Fatal("or")
	}
	if r := eval(t, syntax.Conj(yes, no), st, basePkt); len(r.Packets) != 0 {
		t.Fatal("and")
	}
	// Both operands' reads are logged even when the outcome is decided.
	r := eval(t, syntax.Disj(sYes, syntax.Neg(sYes)), st, basePkt)
	if !r.Log.Reads["a"] {
		t.Fatal("disjunction must log reads of both sides")
	}
}

func TestConditionalLogsCondition(t *testing.T) {
	st := state.NewStore()
	p := syntax.Cond(
		syntax.TestState("flag", syntax.V(values.Int(0)), syntax.V(values.Bool(true))),
		syntax.WriteState("a", syntax.V(values.Int(0)), syntax.V(values.Int(1))),
		syntax.WriteState("b", syntax.V(values.Int(0)), syntax.V(values.Int(2))),
	)
	r := eval(t, p, st, basePkt)
	if !r.Log.Reads["flag"] || !r.Log.Writes["b"] || r.Log.Writes["a"] {
		t.Fatalf("else-branch logs: %+v", r.Log)
	}
	if got := r.Store.Get("b", values.Tuple{values.Int(0)}); !values.Eq(got, values.Int(2)) {
		t.Fatalf("b = %v", got)
	}
}

func TestParallelMulticastAndMerge(t *testing.T) {
	st := state.NewStore()
	p := syntax.Par(
		syntax.Assign(pkt.Outport, values.Int(1)),
		syntax.Assign(pkt.Outport, values.Int(2)),
	)
	r := eval(t, p, st, basePkt)
	if len(r.Packets) != 2 {
		t.Fatalf("multicast: %v", r.Packets)
	}

	// Disjoint state writes merge.
	q := syntax.Par(
		syntax.WriteState("a", syntax.V(values.Int(0)), syntax.V(values.Int(1))),
		syntax.WriteState("b", syntax.V(values.Int(0)), syntax.V(values.Int(2))),
	)
	r = eval(t, q, st, basePkt)
	if got := r.Store.Get("a", values.Tuple{values.Int(0)}); !values.Eq(got, values.Int(1)) {
		t.Fatalf("a = %v", got)
	}
	if got := r.Store.Get("b", values.Tuple{values.Int(0)}); !values.Eq(got, values.Int(2)) {
		t.Fatalf("b = %v", got)
	}
	// Identical packets from both sides collapse (set semantics).
	id2 := syntax.Par(syntax.Id(), syntax.Id())
	if r := eval(t, id2, st, basePkt); len(r.Packets) != 1 {
		t.Fatalf("set semantics: %v", r.Packets)
	}
}

func TestParallelConflicts(t *testing.T) {
	st := state.NewStore()
	ww := syntax.Par(
		syntax.WriteState("s", syntax.V(values.Int(0)), syntax.V(values.Int(1))),
		syntax.WriteState("s", syntax.V(values.Int(0)), syntax.V(values.Int(2))),
	)
	if _, err := semantics.Eval(ww, st, basePkt); err == nil {
		t.Fatal("write/write conflict must be rejected")
	}
	rw := syntax.Par(
		syntax.TestState("s", syntax.V(values.Int(0)), syntax.V(values.Bool(true))),
		syntax.WriteState("s", syntax.V(values.Int(0)), syntax.V(values.Int(2))),
	)
	if _, err := semantics.Eval(rw, st, basePkt); err == nil {
		t.Fatal("read/write conflict must be rejected")
	}
	var ce *semantics.ConflictError
	_, err := semantics.Eval(rw, st, basePkt)
	if !errors.As(err, &ce) || len(ce.Vars) != 1 || ce.Vars[0] != "s" {
		t.Fatalf("conflict error detail: %v", err)
	}
}

// TestSequentialMulticastConflict reproduces the §3 example: p = (f←1 +
// f←2); q = s[0]←f fails because the two copies write s[0] differently,
// while q = g←3 is fine.
func TestSequentialMulticastConflict(t *testing.T) {
	st := state.NewStore()
	multicast := syntax.Par(
		syntax.Assign(pkt.SrcPort, values.Int(1)),
		syntax.Assign(pkt.SrcPort, values.Int(2)),
	)
	bad := syntax.Then(multicast, syntax.WriteState("s", syntax.V(values.Int(0)), syntax.F(pkt.SrcPort)))
	if _, err := semantics.Eval(bad, st, basePkt); err == nil {
		t.Fatal("multicast state write must be rejected")
	}
	good := syntax.Then(multicast, syntax.Assign(pkt.DstPort, values.Int(3)))
	r := eval(t, good, st, basePkt)
	if len(r.Packets) != 2 {
		t.Fatalf("expected two packets, got %v", r.Packets)
	}
}

// TestSequentialThreading checks q sees p's state changes.
func TestSequentialThreading(t *testing.T) {
	st := state.NewStore()
	p := syntax.Then(
		syntax.WriteState("s", syntax.V(values.Int(0)), syntax.V(values.Bool(true))),
		syntax.TestState("s", syntax.V(values.Int(0)), syntax.V(values.Bool(true))),
	)
	if r := eval(t, p, st, basePkt); len(r.Packets) != 1 {
		t.Fatal("write-then-test must pass")
	}
	// Counter then threshold test in sequence (the Figure 1 pattern).
	q := syntax.Then(
		syntax.IncrState("c", syntax.V(values.Int(0))),
		syntax.TestState("c", syntax.V(values.Int(0)), syntax.V(values.Int(1))),
	)
	if r := eval(t, q, st, basePkt); len(r.Packets) != 1 {
		t.Fatal("increment-then-test must see the incremented value")
	}
}

// TestDropThenStateWrite: a dropped packet stops the pipeline; writes after
// the drop never run, writes before do.
func TestDropThenStateWrite(t *testing.T) {
	st := state.NewStore()
	p := syntax.Then(
		syntax.WriteState("before", syntax.V(values.Int(0)), syntax.V(values.Int(1))),
		syntax.Nothing(),
		syntax.WriteState("after", syntax.V(values.Int(0)), syntax.V(values.Int(1))),
	)
	r := eval(t, p, st, basePkt)
	if len(r.Packets) != 0 {
		t.Fatal("packet must drop")
	}
	if got := r.Store.Get("before", values.Tuple{values.Int(0)}); !values.Eq(got, values.Int(1)) {
		t.Fatal("write before drop must persist")
	}
	if got := r.Store.Get("after", values.Tuple{values.Int(0)}); !values.Eq(got, state.Default) {
		t.Fatal("write after drop must not run")
	}
}

func TestEvalExprVectors(t *testing.T) {
	e := syntax.Vec(syntax.F(pkt.SrcIP), syntax.F(pkt.DstIP))
	tup := semantics.EvalExpr(e, basePkt)
	if len(tup) != 2 || !values.Eq(tup[0], basePkt.Field(pkt.SrcIP)) {
		t.Fatalf("vector eval: %v", tup)
	}
	if _, err := semantics.EvalScalar(e, basePkt); err == nil {
		t.Fatal("vector in scalar position must error")
	}
}

func TestAtomicTransparent(t *testing.T) {
	st := state.NewStore()
	p := syntax.Transaction(syntax.Then(
		syntax.WriteState("a", syntax.F(pkt.Inport), syntax.F(pkt.SrcIP)),
		syntax.WriteState("b", syntax.F(pkt.Inport), syntax.F(pkt.DstPort)),
	))
	r := eval(t, p, st, basePkt)
	if len(r.Packets) != 1 {
		t.Fatal("atomic passes the packet")
	}
	if got := r.Store.Get("a", values.Tuple{values.Int(1)}); !values.Eq(got, basePkt.Field(pkt.SrcIP)) {
		t.Fatalf("a = %v", got)
	}
}
