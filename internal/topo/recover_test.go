package topo

import (
	"reflect"
	"testing"
)

// structEq compares the observable shape of two topologies: same name,
// switch count, links, ports and down-set. Unexported derivation state
// (base/cut) is deliberately excluded — a recovered topology must *behave*
// like the original, whoever derived it.
func structEq(a, b *Topology) bool {
	downEq := func(x, y []bool) bool {
		all := func(v []bool) bool {
			for _, d := range v {
				if d {
					return false
				}
			}
			return true
		}
		if len(x) == len(y) {
			return reflect.DeepEqual(x, y)
		}
		return all(x) && all(y)
	}
	return a.Name == b.Name &&
		a.Switches == b.Switches &&
		reflect.DeepEqual(a.Links, b.Links) &&
		reflect.DeepEqual(a.Ports, b.Ports) &&
		downEq(a.Down, b.Down)
}

func TestRecoverSwitchRestoresOriginal(t *testing.T) {
	campus := Campus(1000)
	d, err := campus.Degrade([]NodeID{2}, nil)
	if err != nil {
		t.Fatalf("degrade: %v", err)
	}
	if len(d.Ports) == len(campus.Ports) {
		t.Fatalf("degrading switch 2 should drop its ports")
	}
	r, err := d.Recover([]NodeID{2}, nil)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if r != campus {
		t.Errorf("full recovery should return the pristine topology itself")
	}
	if !structEq(r, campus) {
		t.Errorf("recovered topology differs from the original")
	}
}

func TestRecoverLinkRestoresOriginal(t *testing.T) {
	campus := Campus(1000)
	l := campus.Links[0]
	d, err := campus.Degrade(nil, [][2]NodeID{{l.From, l.To}})
	if err != nil {
		t.Fatalf("degrade: %v", err)
	}
	if len(d.Links) == len(campus.Links) {
		t.Fatalf("degrading a link should remove it")
	}
	// Recover via the reverse direction: link failures are undirected.
	r, err := d.Recover(nil, [][2]NodeID{{l.To, l.From}})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if !structEq(r, campus) {
		t.Errorf("recovered topology differs from the original")
	}
}

func TestRecoverPartialLeavesRemainingFailures(t *testing.T) {
	campus := Campus(1000)
	both, err := campus.Degrade([]NodeID{2, 3}, nil)
	if err != nil {
		t.Fatalf("degrade both: %v", err)
	}
	got, err := both.Recover([]NodeID{2}, nil)
	if err != nil {
		t.Fatalf("recover 2: %v", err)
	}
	want, err := campus.Degrade([]NodeID{3}, nil)
	if err != nil {
		t.Fatalf("degrade 3: %v", err)
	}
	if !structEq(got, want) {
		t.Errorf("partial recovery mismatch:\ngot  %d links %d ports down=%v\nwant %d links %d ports down=%v",
			len(got.Links), len(got.Ports), got.Down, len(want.Links), len(want.Ports), want.Down)
	}
	if got.Pristine() != campus {
		t.Errorf("partial recovery must keep descending from the pristine topology")
	}
}

func TestRecoverStackedDegrades(t *testing.T) {
	campus := Campus(1000)
	d1, err := campus.Degrade([]NodeID{2}, nil)
	if err != nil {
		t.Fatalf("degrade 2: %v", err)
	}
	l := d1.Links[0]
	d2, err := d1.Degrade(nil, [][2]NodeID{{l.From, l.To}})
	if err != nil {
		t.Fatalf("degrade link: %v", err)
	}
	r1, err := d2.Recover(nil, [][2]NodeID{{l.From, l.To}})
	if err != nil {
		t.Fatalf("recover link: %v", err)
	}
	if !structEq(r1, d1) {
		t.Errorf("recovering the link should restore the switch-only degradation")
	}
	r2, err := r1.Recover([]NodeID{2}, nil)
	if err != nil {
		t.Fatalf("recover switch: %v", err)
	}
	if r2 != campus {
		t.Errorf("recovering everything should return the pristine topology")
	}
}

func TestRecoverRejectsHealthyElements(t *testing.T) {
	campus := Campus(1000)
	if _, err := campus.Degrade([]NodeID{2}, nil); err != nil {
		t.Fatalf("degrade: %v", err)
	}
	d, _ := campus.Degrade([]NodeID{2}, nil)
	if _, err := d.Recover([]NodeID{3}, nil); err == nil {
		t.Errorf("recovering a healthy switch should fail")
	}
	l := campus.Links[0]
	if _, err := d.Recover(nil, [][2]NodeID{{l.From, l.To}}); err == nil {
		t.Errorf("recovering a healthy link should fail")
	}
	if _, err := campus.Recover([]NodeID{2}, nil); err == nil {
		t.Errorf("recovering on a pristine topology should fail")
	}
}
