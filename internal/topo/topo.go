// Package topo models the physical network topologies SNAP compiles onto:
// switches, directed capacitated links and external (one-big-switch) ports.
//
// Besides the paper's running-example campus network (Figure 2), the package
// synthesizes the evaluation topologies of Table 5 (three campus networks
// and four RocketFuel ISP backbones) and IGen-style networks of arbitrary
// size (§6.2). The production datasets themselves are not distributable, so
// generators reproduce the *published* switch/edge/port counts with a
// deterministic seed; compiler phase costs depend on those counts, which is
// what the evaluation measures (see DESIGN.md, substitution #2).
package topo

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// NodeID identifies a switch.
type NodeID int

// Port is an external OBS port attached to an edge switch. Ports are
// numbered from 1 as in the paper's examples.
type Port struct {
	ID     int
	Switch NodeID
}

// Link is a directed link with capacity in abstract volume units.
type Link struct {
	From, To NodeID
	Capacity float64
}

// Topology is a switch graph with external ports.
//
// A topology may be *degraded*: switches can be marked down (Down), in
// which case they keep their NodeID — so identifiers stay stable across a
// failure — but carry no links and no ports. Degrade derives the surviving
// topology after a failure; the compiler pipeline and the data-plane
// runtimes treat down switches as unreachable islands.
type Topology struct {
	Name     string
	Switches int
	Links    []Link
	Ports    []Port
	// Down marks failed switches (nil = all up). Down switches retain
	// their NodeID but have no links and no ports.
	Down []bool

	// base is the pristine topology a degraded instance descends from and
	// cut the cumulative set of individually-failed links (both
	// directions), so Recover can compose failures upward: a recovery is
	// re-derived from base with the surviving failure set, never patched
	// onto the degraded instance (whose dead links and ports are gone).
	base *Topology
	cut  map[[2]NodeID]bool

	out       [][]int // adjacency: out[n] lists indices into Links
	linkIndex map[[2]NodeID]int
	portBy    map[int]Port
}

// New builds a topology and freezes its adjacency indexes. Links must not
// repeat.
func New(name string, switches int, links []Link, ports []Port) (*Topology, error) {
	t := &Topology{
		Name:      name,
		Switches:  switches,
		Links:     links,
		Ports:     ports,
		out:       make([][]int, switches),
		linkIndex: make(map[[2]NodeID]int, len(links)),
		portBy:    make(map[int]Port, len(ports)),
	}
	for i, l := range links {
		if l.From < 0 || int(l.From) >= switches || l.To < 0 || int(l.To) >= switches {
			return nil, fmt.Errorf("topology %s: link %d endpoints out of range", name, i)
		}
		key := [2]NodeID{l.From, l.To}
		if _, dup := t.linkIndex[key]; dup {
			return nil, fmt.Errorf("topology %s: duplicate link %d->%d", name, l.From, l.To)
		}
		t.linkIndex[key] = i
		t.out[l.From] = append(t.out[l.From], i)
	}
	for _, p := range ports {
		if int(p.Switch) >= switches {
			return nil, fmt.Errorf("topology %s: port %d on unknown switch %d", name, p.ID, p.Switch)
		}
		if _, dup := t.portBy[p.ID]; dup {
			return nil, fmt.Errorf("topology %s: duplicate port id %d", name, p.ID)
		}
		t.portBy[p.ID] = p
	}
	return t, nil
}

// MustNew builds a topology or panics; used by the deterministic generators.
func MustNew(name string, switches int, links []Link, ports []Port) *Topology {
	t, err := New(name, switches, links, ports)
	if err != nil {
		panic(err)
	}
	return t
}

// OutLinks returns the indices of links leaving n.
func (t *Topology) OutLinks(n NodeID) []int { return t.out[n] }

// LinkBetween returns the index of the n→m link, or -1.
func (t *Topology) LinkBetween(n, m NodeID) int {
	if i, ok := t.linkIndex[[2]NodeID{n, m}]; ok {
		return i
	}
	return -1
}

// PortByID resolves an external port.
func (t *Topology) PortByID(id int) (Port, bool) {
	p, ok := t.portBy[id]
	return p, ok
}

// PortIDs returns all external port ids, sorted.
func (t *Topology) PortIDs() []int {
	ids := make([]int, 0, len(t.Ports))
	for _, p := range t.Ports {
		ids = append(ids, p.ID)
	}
	sort.Ints(ids)
	return ids
}

// Degree returns the out-degree of each switch.
func (t *Topology) Degree() []int {
	deg := make([]int, t.Switches)
	for _, l := range t.Links {
		deg[l.From]++
	}
	return deg
}

// ShortestDists runs Dijkstra from src with the given per-link weights
// (indexed like Links; nil means unit weights), returning distance and
// predecessor-link arrays. Unreachable nodes have distance +Inf (1e30).
func (t *Topology) ShortestDists(src NodeID, weight []float64) (dist []float64, prevLink []int) {
	const inf = 1e30
	dist = make([]float64, t.Switches)
	prevLink = make([]int, t.Switches)
	visited := make([]bool, t.Switches)
	for i := range dist {
		dist[i] = inf
		prevLink[i] = -1
	}
	dist[src] = 0
	for {
		// Linear-scan extract-min: topologies stay in the hundreds of
		// switches, where a heap buys little.
		best, bestD := -1, inf
		for n := 0; n < t.Switches; n++ {
			if !visited[n] && dist[n] < bestD {
				best, bestD = n, dist[n]
			}
		}
		if best < 0 {
			return dist, prevLink
		}
		visited[best] = true
		for _, li := range t.out[best] {
			l := t.Links[li]
			w := 1.0
			if weight != nil {
				w = weight[li]
			}
			if nd := bestD + w; nd < dist[l.To] {
				dist[l.To] = nd
				prevLink[l.To] = li
			}
		}
	}
}

// PathLinks reconstructs the src→dst link sequence from a Dijkstra run.
func (t *Topology) PathLinks(prevLink []int, dst NodeID) []int {
	var rev []int
	for n := dst; prevLink[n] >= 0; n = t.Links[prevLink[n]].From {
		rev = append(rev, prevLink[n])
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Connected reports whether every switch is reachable from switch 0.
func (t *Topology) Connected() bool {
	if t.Switches == 0 {
		return true
	}
	dist, _ := t.ShortestDists(0, nil)
	for _, d := range dist {
		if d >= 1e30 {
			return false
		}
	}
	return true
}

// Up reports whether switch n is alive.
func (t *Topology) Up(n NodeID) bool {
	return t.Down == nil || int(n) >= len(t.Down) || !t.Down[n]
}

// UpSwitches counts the alive switches.
func (t *Topology) UpSwitches() int {
	n := t.Switches
	for _, d := range t.Down {
		if d {
			n--
		}
	}
	return n
}

// Degrade derives the surviving topology after a failure: the listed
// switches go down (keeping their NodeID but losing every incident link
// and attached port) and the listed undirected link pairs vanish in both
// directions. Down-states compose: degrading an already-degraded topology
// accumulates failures. The receiver is not modified.
func (t *Topology) Degrade(switches []NodeID, links [][2]NodeID) (*Topology, error) {
	down := make([]bool, t.Switches)
	copy(down, t.Down)
	for _, s := range switches {
		if s < 0 || int(s) >= t.Switches {
			return nil, fmt.Errorf("topology %s: cannot fail unknown switch %d", t.Name, s)
		}
		down[s] = true
	}
	cutLink := make(map[[2]NodeID]bool, 2*len(links))
	for _, l := range links {
		if t.LinkBetween(l[0], l[1]) < 0 && t.LinkBetween(l[1], l[0]) < 0 {
			return nil, fmt.Errorf("topology %s: cannot fail unknown link %d-%d", t.Name, l[0], l[1])
		}
		cutLink[[2]NodeID{l[0], l[1]}] = true
		cutLink[[2]NodeID{l[1], l[0]}] = true
	}
	var surviving []Link
	for _, l := range t.Links {
		if down[l.From] || down[l.To] || cutLink[[2]NodeID{l.From, l.To}] {
			continue
		}
		surviving = append(surviving, l)
	}
	var ports []Port
	for _, p := range t.Ports {
		if !down[p.Switch] {
			ports = append(ports, p)
		}
	}
	name := t.Name
	if !strings.HasSuffix(name, "-degraded") {
		name += "-degraded"
	}
	d, err := New(name, t.Switches, surviving, ports)
	if err != nil {
		return nil, err
	}
	d.Down = down
	d.base = t.Pristine()
	d.cut = make(map[[2]NodeID]bool, len(t.cut)+len(cutLink))
	for k := range t.cut {
		d.cut[k] = true
	}
	for k := range cutLink {
		d.cut[k] = true
	}
	return d, nil
}

// Pristine returns the undegraded topology this one descends from (itself
// when no failure has been applied).
func (t *Topology) Pristine() *Topology {
	if t.base != nil {
		return t.base
	}
	return t
}

// Recover composes failures upward: the listed switches come back up and
// the listed undirected links are repaired, restoring their original
// capacities, ports and attachments from the pristine topology. Recovering
// an element that is not currently failed is an error. When the last
// failure is recovered the result is the pristine topology itself, so a
// failure followed by recovery of the same element is exactly the
// identity — the inverse Degrade lacked, which only composed downward.
// The receiver is not modified.
func (t *Topology) Recover(switches []NodeID, links [][2]NodeID) (*Topology, error) {
	stillDown := make(map[NodeID]bool)
	for n, d := range t.Down {
		if d {
			stillDown[NodeID(n)] = true
		}
	}
	for _, s := range switches {
		if !stillDown[s] {
			return nil, fmt.Errorf("topology %s: cannot recover switch %d: not failed", t.Name, s)
		}
		delete(stillDown, s)
	}
	stillCut := make(map[[2]NodeID]bool, len(t.cut))
	for k := range t.cut {
		stillCut[k] = true
	}
	for _, l := range links {
		if !stillCut[[2]NodeID{l[0], l[1]}] && !stillCut[[2]NodeID{l[1], l[0]}] {
			return nil, fmt.Errorf("topology %s: cannot recover link %d-%d: not failed", t.Name, l[0], l[1])
		}
		delete(stillCut, [2]NodeID{l[0], l[1]})
		delete(stillCut, [2]NodeID{l[1], l[0]})
	}
	var remSwitches []NodeID
	for n := 0; n < t.Switches; n++ {
		if stillDown[NodeID(n)] {
			remSwitches = append(remSwitches, NodeID(n))
		}
	}
	var remLinks [][2]NodeID
	for k := range stillCut {
		if k[0] < k[1] {
			remLinks = append(remLinks, k)
		}
	}
	sort.Slice(remLinks, func(i, j int) bool {
		if remLinks[i][0] != remLinks[j][0] {
			return remLinks[i][0] < remLinks[j][0]
		}
		return remLinks[i][1] < remLinks[j][1]
	})
	base := t.Pristine()
	if len(remSwitches) == 0 && len(remLinks) == 0 {
		return base, nil
	}
	return base.Degrade(remSwitches, remLinks)
}

// UpConnected reports whether the alive switches form one connected
// component (every up switch reachable from the lowest-numbered up
// switch). A degraded topology that fails this check is partitioned: some
// surviving traffic pairs cannot communicate and recompilation on it will
// be unable to route them.
func (t *Topology) UpConnected() bool {
	src := NodeID(-1)
	for n := 0; n < t.Switches; n++ {
		if t.Up(NodeID(n)) {
			src = NodeID(n)
			break
		}
	}
	if src < 0 {
		return true // no survivors: vacuously connected
	}
	dist, _ := t.ShortestDists(src, nil)
	for n := 0; n < t.Switches; n++ {
		if t.Up(NodeID(n)) && dist[n] >= 1e30 {
			return false
		}
	}
	return true
}

// Campus builds the running-example network or panics; the wiring is a
// compile-time constant, so a failure is a programming error. Library
// callers that prefer an error use NewCampus.
func Campus(capacity float64) *Topology {
	t, err := NewCampus(capacity)
	if err != nil {
		panic(err)
	}
	return t
}

// NewCampus returns the running-example network of Figure 2: ingress
// routers I1–I2 and department edges D1–D4 (D4 = the CS building, port 6)
// over a six-router core. Wiring follows the §2.2 path descriptions: I1/D1
// reach D4 via C1–C5, I2/D2 via C2–C6, D3 via C5.
func NewCampus(capacity float64) (*Topology, error) {
	// Node ids: 0..5 edge (I1, I2, D1, D2, D3, D4), 6..11 core (C1..C6).
	const (
		I1 = iota
		I2
		D1
		D2
		D3
		D4
		C1
		C2
		C3
		C4
		C5
		C6
	)
	undirected := [][2]NodeID{
		{I1, C1}, {I1, C3},
		{I2, C2}, {I2, C4},
		{D1, C1}, {D1, C3},
		{D2, C2}, {D2, C4},
		{D3, C5}, {D3, C3},
		{D4, C5}, {D4, C6},
		{C1, C5}, {C2, C6}, {C3, C5}, {C4, C6}, {C1, C2}, {C3, C4},
	}
	var links []Link
	for _, e := range undirected {
		links = append(links,
			Link{From: e[0], To: e[1], Capacity: capacity},
			Link{From: e[1], To: e[0], Capacity: capacity})
	}
	ports := []Port{
		{ID: 1, Switch: I1},
		{ID: 2, Switch: I2},
		{ID: 3, Switch: D1},
		{ID: 4, Switch: D2},
		{ID: 5, Switch: D3},
		{ID: 6, Switch: D4},
	}
	return New("campus", 12, links, ports)
}

// CampusSwitchName names the campus switches for diagnostics.
func CampusSwitchName(n NodeID) string {
	names := []string{"I1", "I2", "D1", "D2", "D3", "D4", "C1", "C2", "C3", "C4", "C5", "C6"}
	if int(n) < len(names) {
		return names[n]
	}
	return fmt.Sprintf("S%d", n)
}

// Spec describes a Table 5 evaluation topology: the published switch count,
// directed-edge count and external-port count (#Demands = ports²).
type Spec struct {
	Name     string
	Switches int
	Edges    int // directed links
	Ports    int
	Kind     string // "campus" or "isp"
}

// Table5 lists the seven evaluation topologies with the counts published in
// Table 5 of the paper (port counts are derived from the demand counts:
// #Demands = ports²).
func Table5() []Spec {
	return []Spec{
		{Name: "Stanford", Switches: 26, Edges: 92, Ports: 144, Kind: "campus"},
		{Name: "Berkeley", Switches: 25, Edges: 96, Ports: 185, Kind: "campus"},
		{Name: "Purdue", Switches: 98, Edges: 232, Ports: 156, Kind: "campus"},
		{Name: "AS1755", Switches: 87, Edges: 322, Ports: 60, Kind: "isp"},
		{Name: "AS1221", Switches: 104, Edges: 302, Ports: 72, Kind: "isp"},
		{Name: "AS6461", Switches: 138, Edges: 744, Ports: 96, Kind: "isp"},
		{Name: "AS3257", Switches: 161, Edges: 656, Ports: 112, Kind: "isp"},
	}
}

// Named synthesizes a Table 5 topology (optionally scaling the port count
// by portScale in (0,1] to trim demand counts for CI-sized runs).
func Named(name string, capacity, portScale float64) (*Topology, error) {
	for _, spec := range Table5() {
		if spec.Name == name {
			ports := int(float64(spec.Ports) * portScale)
			if ports < 2 {
				ports = 2
			}
			return synthesize(spec.Name, spec.Switches, spec.Edges, ports, capacity)
		}
	}
	return nil, fmt.Errorf("unknown Table 5 topology %q", name)
}

// synthesize builds a deterministic connected graph with the requested
// switch count and directed-edge count: a random spanning tree plus random
// extra links, mirroring the degree spread of inferred ISP maps. External
// ports go to the 70% lowest-degree switches (§6.2), round-robin.
func synthesize(name string, switches, directedEdges, ports int, capacity float64) (*Topology, error) {
	rng := rand.New(rand.NewSource(seedFor(name)))
	undirected := directedEdges / 2

	type edge struct{ a, b NodeID }
	var edges []edge
	seen := map[[2]NodeID]bool{}
	addEdge := func(a, b NodeID) bool {
		if a == b {
			return false
		}
		k := [2]NodeID{min(a, b), max(a, b)}
		if seen[k] {
			return false
		}
		seen[k] = true
		edges = append(edges, edge{a, b})
		return true
	}

	// Random spanning tree (random attachment gives a heavy-tailed degree
	// spread similar to router-level maps).
	perm := rng.Perm(switches)
	for i := 1; i < switches; i++ {
		parent := perm[rng.Intn(i)]
		addEdge(NodeID(perm[i]), NodeID(parent))
	}
	for len(edges) < undirected {
		addEdge(NodeID(rng.Intn(switches)), NodeID(rng.Intn(switches)))
	}

	var links []Link
	for _, e := range edges {
		links = append(links,
			Link{From: e.a, To: e.b, Capacity: capacity},
			Link{From: e.b, To: e.a, Capacity: capacity})
	}

	t, err := New(name, switches, links, nil)
	if err != nil {
		return nil, err
	}
	t.Ports = edgePorts(t, ports)
	for _, p := range t.Ports {
		t.portBy[p.ID] = p
	}
	return t, nil
}

// edgePorts picks the 70% lowest-degree switches as edge switches and
// spreads the requested number of external ports over them round-robin.
func edgePorts(t *Topology, ports int) []Port {
	deg := t.Degree()
	order := make([]int, t.Switches)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		if deg[order[i]] != deg[order[j]] {
			return deg[order[i]] < deg[order[j]]
		}
		return order[i] < order[j]
	})
	nEdge := (t.Switches*7 + 9) / 10
	if nEdge < 1 {
		nEdge = 1
	}
	edges := order[:nEdge]
	sort.Ints(edges)
	out := make([]Port, 0, ports)
	for i := 0; i < ports; i++ {
		out = append(out, Port{ID: i + 1, Switch: NodeID(edges[i%len(edges)])})
	}
	return out
}

// IGen builds an IGen-style network or panics; the construction is
// deterministic in n, so a failure is a programming error. Library callers
// that prefer an error use NewIGen.
func IGen(n int, capacity float64) *Topology {
	t, err := NewIGen(n, capacity)
	if err != nil {
		panic(err)
	}
	return t
}

// NewIGen synthesizes an IGen-style network of n switches (§6.2 "Scaling
// with topology size"): switches are placed on a plane, connected to their
// nearest neighbors plus a spanning backbone, with 70% lowest-degree
// switches carrying one external port each.
func NewIGen(n int, capacity float64) (*Topology, error) {
	rng := rand.New(rand.NewSource(seedFor(fmt.Sprintf("igen-%d", n))))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	dist2 := func(a, b int) float64 {
		dx, dy := xs[a]-xs[b], ys[a]-ys[b]
		return dx*dx + dy*dy
	}

	seen := map[[2]NodeID]bool{}
	var pairs [][2]NodeID
	add := func(a, b int) {
		if a == b {
			return
		}
		k := [2]NodeID{NodeID(min(a, b)), NodeID(max(a, b))}
		if !seen[k] {
			seen[k] = true
			pairs = append(pairs, k)
		}
	}

	// k-nearest-neighbor links (k=2), IGen's basic heuristic.
	for i := 0; i < n; i++ {
		type cand struct {
			j int
			d float64
		}
		var cs []cand
		for j := 0; j < n; j++ {
			if j != i {
				cs = append(cs, cand{j, dist2(i, j)})
			}
		}
		sort.Slice(cs, func(a, b int) bool { return cs[a].d < cs[b].d })
		for k := 0; k < 2 && k < len(cs); k++ {
			add(i, cs[k].j)
		}
	}

	// Greedy MST (Prim) to guarantee connectivity, emulating IGen's
	// backbone tree.
	inTree := make([]bool, n)
	inTree[0] = true
	for count := 1; count < n; count++ {
		bi, bj, bd := -1, -1, 1e30
		for i := 0; i < n; i++ {
			if !inTree[i] {
				continue
			}
			for j := 0; j < n; j++ {
				if !inTree[j] && dist2(i, j) < bd {
					bi, bj, bd = i, j, dist2(i, j)
				}
			}
		}
		inTree[bj] = true
		add(bi, bj)
	}

	var links []Link
	for _, p := range pairs {
		links = append(links,
			Link{From: p[0], To: p[1], Capacity: capacity},
			Link{From: p[1], To: p[0], Capacity: capacity})
	}
	t, err := New(fmt.Sprintf("igen-%d", n), n, links, nil)
	if err != nil {
		return nil, err
	}
	nPorts := (n*7 + 9) / 10
	t.Ports = edgePorts(t, nPorts)
	for _, p := range t.Ports {
		t.portBy[p.ID] = p
	}
	return t, nil
}

func seedFor(name string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range name {
		h ^= int64(c)
		h *= 1099511628211
	}
	return h
}
