package topo

import (
	"testing"
)

func TestCampusStructure(t *testing.T) {
	c := Campus(100)
	if c.Switches != 12 {
		t.Fatalf("switches = %d", c.Switches)
	}
	if len(c.Ports) != 6 {
		t.Fatalf("ports = %d", len(c.Ports))
	}
	if !c.Connected() {
		t.Fatal("campus must be connected")
	}
	// Port 6 attaches to D4 (node 5) per Figure 2.
	p, ok := c.PortByID(6)
	if !ok || p.Switch != 5 {
		t.Fatalf("port 6 on %v", p)
	}
	// Every link has its reverse.
	for _, l := range c.Links {
		if c.LinkBetween(l.To, l.From) < 0 {
			t.Fatalf("missing reverse of %d->%d", l.From, l.To)
		}
	}
	// The §2.2 path wiring exists: I1–C1, C1–C5, C5–D4.
	for _, e := range [][2]NodeID{{0, 6}, {6, 10}, {10, 5}} {
		if c.LinkBetween(e[0], e[1]) < 0 {
			t.Errorf("missing §2.2 link %s–%s", CampusSwitchName(e[0]), CampusSwitchName(e[1]))
		}
	}
}

func TestNamedTopologiesMatchTable5(t *testing.T) {
	for _, spec := range Table5() {
		tp, err := Named(spec.Name, 100, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if tp.Switches != spec.Switches {
			t.Errorf("%s: switches %d, want %d", spec.Name, tp.Switches, spec.Switches)
		}
		if len(tp.Links) != spec.Edges {
			t.Errorf("%s: directed edges %d, want %d", spec.Name, len(tp.Links), spec.Edges)
		}
		if len(tp.Ports) != spec.Ports {
			t.Errorf("%s: ports %d, want %d", spec.Name, len(tp.Ports), spec.Ports)
		}
		if !tp.Connected() {
			t.Errorf("%s: not connected", spec.Name)
		}
	}
}

func TestNamedDeterministic(t *testing.T) {
	a, _ := Named("AS1755", 100, 1.0)
	b, _ := Named("AS1755", 100, 1.0)
	if len(a.Links) != len(b.Links) {
		t.Fatal("link counts differ across runs")
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			t.Fatalf("link %d differs: %v vs %v", i, a.Links[i], b.Links[i])
		}
	}
}

func TestPortScaling(t *testing.T) {
	tp, err := Named("Stanford", 100, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tp.Ports); got != 36 {
		t.Fatalf("scaled ports = %d, want 36", got)
	}
	if _, err := Named("Nowhere", 100, 1); err == nil {
		t.Fatal("unknown topology must error")
	}
}

// TestEdgePortsOnLowDegree: ports live on the 70% lowest-degree switches
// (§6.2), so no port switch may have a degree above the 70th-percentile
// boundary.
func TestEdgePortsOnLowDegree(t *testing.T) {
	tp, _ := Named("AS6461", 100, 1.0)
	deg := tp.Degree()
	sorted := append([]int(nil), deg...)
	sortInts(sorted)
	nEdge := (tp.Switches*7 + 9) / 10
	boundary := sorted[nEdge-1]
	for _, p := range tp.Ports {
		if deg[p.Switch] > boundary {
			t.Fatalf("port %d on switch %d with degree %d > boundary %d",
				p.ID, p.Switch, deg[p.Switch], boundary)
		}
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestIGenProperties(t *testing.T) {
	for _, n := range []int{10, 50, 180} {
		tp := IGen(n, 100)
		if tp.Switches != n {
			t.Fatalf("igen-%d: switches %d", n, tp.Switches)
		}
		if !tp.Connected() {
			t.Fatalf("igen-%d: not connected", n)
		}
		wantPorts := (n*7 + 9) / 10
		if len(tp.Ports) != wantPorts {
			t.Fatalf("igen-%d: ports %d, want %d", n, len(tp.Ports), wantPorts)
		}
	}
}

func TestShortestPaths(t *testing.T) {
	// Line 0-1-2-3 with a shortcut 0-3 of high cost.
	links := []Link{
		{From: 0, To: 1, Capacity: 10}, {From: 1, To: 0, Capacity: 10},
		{From: 1, To: 2, Capacity: 10}, {From: 2, To: 1, Capacity: 10},
		{From: 2, To: 3, Capacity: 10}, {From: 3, To: 2, Capacity: 10},
		{From: 0, To: 3, Capacity: 1}, {From: 3, To: 0, Capacity: 1},
	}
	tp := MustNew("t", 4, links, nil)
	// Unit weights: direct hop wins.
	dist, prev := tp.ShortestDists(0, nil)
	if dist[3] != 1 {
		t.Fatalf("unit-weight dist to 3 = %f", dist[3])
	}
	// 1/capacity weights: the three-hop path (0.3) beats the shortcut (1.0).
	w := make([]float64, len(links))
	for i, l := range links {
		w[i] = 1 / l.Capacity
	}
	dist, prev = tp.ShortestDists(0, w)
	if dist[3] >= 0.5 {
		t.Fatalf("capacity-weight dist to 3 = %f", dist[3])
	}
	path := tp.PathLinks(prev, 3)
	if len(path) != 3 {
		t.Fatalf("path length %d, want 3 hops", len(path))
	}
	// Path is contiguous from 0 to 3.
	at := NodeID(0)
	for _, li := range path {
		if tp.Links[li].From != at {
			t.Fatalf("discontiguous path at link %d", li)
		}
		at = tp.Links[li].To
	}
	if at != 3 {
		t.Fatalf("path ends at %d", at)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("bad", 2, []Link{{From: 0, To: 5}}, nil); err == nil {
		t.Error("out-of-range link accepted")
	}
	if _, err := New("bad", 2, []Link{{From: 0, To: 1}, {From: 0, To: 1}}, nil); err == nil {
		t.Error("duplicate link accepted")
	}
	if _, err := New("bad", 2, nil, []Port{{ID: 1, Switch: 9}}); err == nil {
		t.Error("port on unknown switch accepted")
	}
	if _, err := New("bad", 2, nil, []Port{{ID: 1, Switch: 0}, {ID: 1, Switch: 1}}); err == nil {
		t.Error("duplicate port id accepted")
	}
}

func TestPortIDsSorted(t *testing.T) {
	tp := MustNew("p", 2, nil, []Port{{ID: 3, Switch: 0}, {ID: 1, Switch: 1}, {ID: 2, Switch: 0}})
	ids := tp.PortIDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("unsorted port ids: %v", ids)
		}
	}
}

// TestDegradeSwitch: failing a switch keeps the NodeID space intact but
// removes every incident link and attached port; failures compose.
func TestDegradeSwitch(t *testing.T) {
	c := Campus(100)
	// Node 4 is D3 (port 5), linked to C5 and C3.
	d, err := c.Degrade([]NodeID{4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Switches != c.Switches {
		t.Fatalf("degraded switch count %d, want %d (IDs must stay stable)", d.Switches, c.Switches)
	}
	if d.Up(4) {
		t.Fatal("failed switch still up")
	}
	if d.UpSwitches() != c.Switches-1 {
		t.Fatalf("UpSwitches = %d", d.UpSwitches())
	}
	if _, ok := d.PortByID(5); ok {
		t.Fatal("port 5 survived its switch")
	}
	if len(d.Ports) != len(c.Ports)-1 {
		t.Fatalf("ports = %d", len(d.Ports))
	}
	if len(d.OutLinks(4)) != 0 {
		t.Fatal("failed switch kept outgoing links")
	}
	for _, l := range d.Links {
		if l.From == 4 || l.To == 4 {
			t.Fatalf("link %d->%d touches the failed switch", l.From, l.To)
		}
	}
	if !d.UpConnected() {
		t.Fatal("campus minus one edge switch must stay connected")
	}
	// The original is untouched.
	if !c.Up(4) || len(c.Links) == 0 {
		t.Fatal("Degrade mutated the receiver")
	}
	// Compose a second failure on the degraded topology.
	d2, err := d.Degrade([]NodeID{5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Up(4) || d2.Up(5) {
		t.Fatal("down-states must accumulate")
	}
}

// TestDegradeLink: failing an undirected link removes both directions and
// nothing else; failing enough links partitions, which UpConnected reports.
func TestDegradeLink(t *testing.T) {
	c := Campus(100)
	d, err := c.Degrade(nil, [][2]NodeID{{4, 10}}) // D3–C5
	if err != nil {
		t.Fatal(err)
	}
	if d.LinkBetween(4, 10) >= 0 || d.LinkBetween(10, 4) >= 0 {
		t.Fatal("failed link survived")
	}
	if len(d.Links) != len(c.Links)-2 {
		t.Fatalf("links = %d, want %d", len(d.Links), len(c.Links)-2)
	}
	if !d.UpConnected() {
		t.Fatal("campus minus one link must stay connected (D3 still reaches C3)")
	}
	// Cutting both of D3's links strands it: partitioned.
	p, err := c.Degrade(nil, [][2]NodeID{{4, 10}, {4, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if p.UpConnected() {
		t.Fatal("stranded switch not reported as partition")
	}
	if _, ok := p.PortByID(5); !ok {
		t.Fatal("link failures must not remove ports")
	}
}

// TestDegradeValidation: unknown elements are rejected.
func TestDegradeValidation(t *testing.T) {
	c := Campus(100)
	if _, err := c.Degrade([]NodeID{99}, nil); err == nil {
		t.Error("unknown switch accepted")
	}
	if _, err := c.Degrade(nil, [][2]NodeID{{0, 5}}); err == nil {
		t.Error("unknown link accepted")
	}
}
