// Package apps contains the ~20 stateful applications of Table 3 and
// Appendix F of the paper, written in SNAP's surface syntax and parsed by
// internal/parser. These are the programs the evaluation section composes
// and compiles (Figures 9–11), and the expressiveness evidence of §6.1.
//
// Conventions carried over from the paper's pseudo-code:
//   - Absent state entries read as False, and ++/-- coerce them to 0, so
//     flag tests like "established[a][b]" and counters compose directly.
//   - Symbolic enum constants (SYN, Iframe, ESTABLISHED, ...) are string
//     values.
//   - Thresholds are injected as named constants.
package apps

import (
	"fmt"
	"sort"

	"snap/internal/parser"
	"snap/internal/pkt"
	"snap/internal/syntax"
	"snap/internal/values"
)

// App is one catalogued SNAP application.
type App struct {
	Name   string
	Group  string // Chimera, FAST, Bohatei, Other (Table 3)
	Source string
	Opts   parser.Options
}

// Policy parses the application source.
func (a App) Policy() (syntax.Policy, error) {
	p, err := parser.ParseWith(a.Source, a.Opts)
	if err != nil {
		return nil, fmt.Errorf("app %s: %w", a.Name, err)
	}
	return p, nil
}

// MustPolicy parses or panics; the test suite guarantees all catalogued
// sources parse.
func (a App) MustPolicy() syntax.Policy {
	p, err := a.Policy()
	if err != nil {
		panic(err)
	}
	return p
}

// Threshold is the default detection threshold used across applications.
const Threshold = 3

func consts(extra map[string]values.Value) parser.Options {
	c := map[string]values.Value{
		"threshold": values.Int(Threshold),
	}
	for k, v := range extra {
		c[k] = v
	}
	return parser.Options{Consts: c}
}

// Subnet returns the paper's running-example subnet 10.0.i.0/24.
func Subnet(i int) values.Value { return values.Prefix(uint32(10)<<24|uint32(i)<<8, 24) }

// --- The running example (§2) ---

// DNSTunnelDetectSrc is the program of Figure 1 (DNS tunnel detection for
// the CS department subnet 10.0.6.0/24).
const DNSTunnelDetectSrc = `
if dstip = 10.0.6.0/24 & srcport = 53 then
  orphan[dstip][dns.rdata] <- True;
  susp-client[dstip]++;
  if susp-client[dstip] = threshold then
    blacklist[dstip] <- True
  else id
else
  if srcip = 10.0.6.0/24 & orphan[srcip][dstip] then
    orphan[srcip][dstip] <- False;
    susp-client[srcip]--
  else id
`

// DNSTunnelDetect returns the Figure 1 policy.
func DNSTunnelDetect() syntax.Policy {
	return parser.MustParseWith(DNSTunnelDetectSrc, consts(nil))
}

// AssignEgress returns the §2.1 forwarding policy for n OBS ports: packets
// to subnet 10.0.i.0/24 exit port i, everything else is dropped.
func AssignEgress(n int) syntax.Policy {
	p := syntax.Policy(syntax.Nothing())
	for i := n; i >= 1; i-- {
		p = syntax.Cond(
			syntax.FieldEq(pkt.DstIP, Subnet(i)),
			syntax.Assign(pkt.Outport, values.Int(int64(i))),
			p,
		)
	}
	return p
}

// Assumption returns the §4.3 operator-assumption predicate for n ports:
// traffic from subnet i enters at port i.
func Assumption(n int) syntax.Policy {
	var terms []syntax.Pred
	for i := 1; i <= n; i++ {
		terms = append(terms, syntax.Conj(
			syntax.FieldEq(pkt.SrcIP, Subnet(i)),
			syntax.FieldEq(pkt.Inport, values.Int(int64(i))),
		))
	}
	return syntax.Disj(terms...)
}

// Monitor returns the §2.1 per-ingress monitoring policy count[inport]++.
func Monitor() syntax.Policy {
	return parser.MustParse(`count[inport]++`)
}

// HoneypotSrc is the §2.1 network-transaction example.
const HoneypotSrc = `
if dstip = 10.0.3.0/25 then
  atomic(hon-ip[inport] <- srcip;
         hon-dstport[inport] <- dstport)
else id
`

// Honeypot returns the atomic honeypot recorder of §2.1.
func Honeypot() syntax.Policy { return parser.MustParseWith(HoneypotSrc, consts(nil)) }

// --- Catalogue (Table 3 / Appendix F) ---

var catalogue = []App{
	{
		Name:  "many-ip-domains",
		Group: "Chimera",
		// Policy 1: # domains sharing the same IP address.
		Source: `
if srcport = 53 then
  if ~domain-ip-pair[dns.rdata][dns.qname] then
    num-of-domains[dns.rdata]++;
    domain-ip-pair[dns.rdata][dns.qname] <- True;
    if num-of-domains[dns.rdata] = threshold then
      mal-ip-list[dns.rdata] <- True
    else id
  else id
else id`,
		Opts: consts(nil),
	},
	{
		Name:  "many-domain-ips",
		Group: "Chimera",
		// Policy 2: # distinct IP addresses under the same domain.
		Source: `
if srcport = 53 then
  if ~ip-domain-pair[dns.qname][dns.rdata] then
    num-of-ips[dns.qname]++;
    ip-domain-pair[dns.qname][dns.rdata] <- True;
    if num-of-ips[dns.qname] = threshold then
      mal-domain-list[dns.qname] <- True
    else id
  else id
else id`,
		Opts: consts(nil),
	},
	{
		Name:  "dns-ttl-change",
		Group: "Chimera",
		// Policy 4: DNS TTL change tracking.
		Source: `
if srcport = 53 then
  if ~seen[dns.rdata] then
    seen[dns.rdata] <- True;
    last-ttl[dns.rdata] <- dns.ttl;
    ttl-change[dns.rdata] <- 0
  else
    if last-ttl[dns.rdata] = dns.ttl then id
    else
      last-ttl[dns.rdata] <- dns.ttl;
      ttl-change[dns.rdata]++
else id`,
		Opts: consts(nil),
	},
	{
		Name:   "dns-tunnel-detect",
		Group:  "Chimera",
		Source: DNSTunnelDetectSrc,
		Opts:   consts(nil),
	},
	{
		Name:  "sidejack-detect",
		Group: "Chimera",
		// Policy 8: a session id must keep the client IP and user agent it
		// was established with.
		Source: `
if dstip = server & ~(sid = null) then
  if ~active-session[sid] then
    atomic(active-session[sid] <- True;
           sid2ip[sid] <- srcip;
           sid2agent[sid] <- http.user-agent)
  else
    if sid2ip[sid] = srcip & sid2agent[sid] = http.user-agent then id
    else drop
else id`,
		Opts: consts(map[string]values.Value{
			"server": values.IPv4(10, 0, 5, 80),
			"null":   values.Int(0),
		}),
	},
	{
		Name:  "spam-detect",
		Group: "Chimera",
		// Policy 6: flag new mail transfer agents that send too much mail
		// in their first tracking window. The paper's Unknown state is the
		// absent/False default. (Parentheses delimit the first conditional:
		// like C, the textual syntax attaches a trailing "; stmt" to the
		// innermost else.)
		Source: `
(if MTA-dir[smtp.mta] = False then
  MTA-dir[smtp.mta] <- Tracked;
  mail-counter[smtp.mta] <- 0
else id);
if MTA-dir[smtp.mta] = Tracked then
  mail-counter[smtp.mta]++;
  if mail-counter[smtp.mta] = threshold then
    MTA-dir[smtp.mta] <- Spammer
  else id
else id`,
		Opts: consts(nil),
	},
	{
		Name:  "stateful-firewall",
		Group: "FAST",
		// Policy 3: only connections initiated inside subnet 6 may return.
		Source: `
if srcip = 10.0.6.0/24 then
  established[srcip][dstip] <- True
else
  if dstip = 10.0.6.0/24 then
    established[dstip][srcip]
  else id`,
		Opts: consts(nil),
	},
	{
		Name:  "ftp-monitoring",
		Group: "FAST",
		// Policy 5: allow FTP data connections only after a control-channel
		// PORT announcement (standard mode).
		Source: `
if dstport = 21 then
  ftp-data-chan[srcip][dstip][ftp.port] <- True
else
  if srcport = 20 then
    ftp-data-chan[dstip][srcip][ftp.port]
  else id`,
		Opts: consts(nil),
	},
	{
		Name:  "heavy-hitter",
		Group: "FAST",
		// Policy 7: flag sources opening too many connections.
		Source: `
if tcp.flags = SYN & ~heavy-hitter[srcip] then
  hh-counter[srcip]++;
  if hh-counter[srcip] = threshold then
    heavy-hitter[srcip] <- True
  else id
else id`,
		Opts: consts(nil),
	},
	{
		Name:  "super-spreader",
		Group: "FAST",
		// Policy 9: net connection count per source, SYN up / FIN down.
		Source: `
if tcp.flags = SYN then
  spreader[srcip]++;
  if spreader[srcip] = threshold then
    super-spreader[srcip] <- True
  else id
else
  if tcp.flags = FIN then
    spreader[srcip]--
  else id`,
		Opts: consts(nil),
	},
	{
		Name:  "flow-size-sampling",
		Group: "FAST",
		// Policies 10–14: classify flows by size, then sample each class at
		// its own rate.
		Source: `
flow-size[srcip][dstip][srcport][dstport][proto]++;
(if flow-size[srcip][dstip][srcport][dstport][proto] = 1 then
  flow-type[srcip][dstip][srcport][dstport][proto] <- SMALL
else
  if flow-size[srcip][dstip][srcport][dstport][proto] = 100 then
    flow-type[srcip][dstip][srcport][dstport][proto] <- MEDIUM
  else
    if flow-size[srcip][dstip][srcport][dstport][proto] = 1000 then
      flow-type[srcip][dstip][srcport][dstport][proto] <- LARGE
    else id);
if flow-type[srcip][dstip][srcport][dstport][proto] = SMALL then
  small-sampler[srcip][dstip][srcport][dstport][proto]++;
  if small-sampler[srcip][dstip][srcport][dstport][proto] = 5 then
    small-sampler[srcip][dstip][srcport][dstport][proto] <- 0
  else drop
else
  if flow-type[srcip][dstip][srcport][dstport][proto] = MEDIUM then
    medium-sampler[srcip][dstip][srcport][dstport][proto]++;
    if medium-sampler[srcip][dstip][srcport][dstport][proto] = 50 then
      medium-sampler[srcip][dstip][srcport][dstport][proto] <- 0
    else drop
  else
    large-sampler[srcip][dstip][srcport][dstport][proto]++;
    if large-sampler[srcip][dstip][srcport][dstport][proto] = 500 then
      large-sampler[srcip][dstip][srcport][dstport][proto] <- 0
    else drop`,
		Opts: consts(nil),
	},
	{
		Name:  "selective-dropping",
		Group: "FAST",
		// Policy 15: drop differentially-encoded MPEG frames whose I-frame
		// dependency was dropped.
		Source: `
if mpeg.frame-type = Iframe then
  dep-count[srcip][dstip][srcport][dstport] <- 14
else
  if dep-count[srcip][dstip][srcport][dstport] = 0 then
    drop
  else
    dep-count[srcip][dstip][srcport][dstport]--`,
		Opts: consts(nil),
	},
	{
		Name:  "conn-affinity",
		Group: "FAST",
		// Policy 16: established connections keep their load-balancer
		// assignment (lb is a named sub-policy).
		Source: `
if tcp-state[dstip][srcip][dstport][srcport][proto] = ESTABLISHED
 | tcp-state[srcip][dstip][srcport][dstport][proto] = ESTABLISHED then
  lb
else id`,
		Opts: parser.Options{
			Consts: map[string]values.Value{"threshold": values.Int(Threshold)},
			Policies: map[string]syntax.Policy{
				"lb": parser.MustParse(`affinity-bucket[srcip]++`),
			},
		},
	},
	{
		Name:  "syn-flood-detect",
		Group: "Bohatei",
		// §F: count SYNs without a matching ACK from the receiver side and
		// block senders that cross the threshold.
		Source: `
if tcp.flags = SYN then
  pending-syn[srcip]++;
  if pending-syn[srcip] = threshold then
    syn-flooder[srcip] <- True
  else id
else
  if tcp.flags = SYN-ACK then
    pending-syn[dstip]--
  else id`,
		Opts: consts(nil),
	},
	{
		Name:  "dns-amplification",
		Group: "Bohatei",
		// Policy 17: drop DNS responses that answer no recorded query.
		Source: `
if dstport = 53 then
  benign-request[srcip][dstip] <- True
else
  if srcport = 53 & ~benign-request[dstip][srcip] then
    drop
  else id`,
		Opts: consts(nil),
	},
	{
		Name:  "udp-flood",
		Group: "Bohatei",
		// Policy 18: rate-flag UDP floods per source.
		Source: `
if proto = 17 & ~udp-flooder[srcip] then
  udp-counter[srcip]++;
  if udp-counter[srcip] = threshold then
    udp-flooder[srcip] <- True;
    drop
  else id
else id`,
		Opts: consts(nil),
	},
	{
		Name:  "elephant-flows",
		Group: "Bohatei",
		// §F: detect abnormally large flows, then sample/drop their packets.
		// State names are distinct from flow-size-sampling's so the Table 3
		// programs can be parallel-composed without write/write races
		// (§6.2 composes all of them into one policy).
		Source: `
eflow-size[srcip][dstip][srcport][dstport][proto]++;
(if eflow-size[srcip][dstip][srcport][dstport][proto] = 1000 then
  elephant[srcip][dstip][srcport][dstport][proto] <- True
else id);
if elephant[srcip][dstip][srcport][dstport][proto] then
  e-sampler[srcip][dstip][srcport][dstport][proto]++;
  if e-sampler[srcip][dstip][srcport][dstport][proto] = 500 then
    e-sampler[srcip][dstip][srcport][dstport][proto] <- 0
  else drop
else id`,
		Opts: consts(nil),
	},
	{
		Name:  "snort-flowbits",
		Group: "Other",
		// Policy 19: the Snort flowbits rule for Kindle web traffic.
		Source: `
srcip = 10.0.0.0/16;
dstip = 172.16.0.0/12;
dstport = 80;
established[srcip][dstip][srcport][dstport][proto] = True;
content = "Kindle/3.0+";
kindle[srcip][dstip][srcport][dstport][proto] <- True`,
		Opts: consts(nil),
	},
	{
		Name:  "tcp-state-machine",
		Group: "Other",
		// Policy 20: bump-on-the-wire TCP state machine.
		Source: `
if tcp.flags = SYN & tcp-state[srcip][dstip][srcport][dstport][proto] = CLOSED then
  tcp-state[srcip][dstip][srcport][dstport][proto] <- SYN-SENT
else
if tcp.flags = SYN-ACK & tcp-state[dstip][srcip][dstport][srcport][proto] = SYN-SENT then
  tcp-state[dstip][srcip][dstport][srcport][proto] <- SYN-RECEIVED
else
if tcp.flags = ACK & tcp-state[srcip][dstip][srcport][dstport][proto] = SYN-RECEIVED then
  tcp-state[srcip][dstip][srcport][dstport][proto] <- ESTABLISHED
else
if tcp.flags = FIN & tcp-state[srcip][dstip][srcport][dstport][proto] = ESTABLISHED then
  tcp-state[srcip][dstip][srcport][dstport][proto] <- FIN-WAIT
else
if tcp.flags = FIN-ACK & tcp-state[dstip][srcip][dstport][srcport][proto] = FIN-WAIT then
  tcp-state[dstip][srcip][dstport][srcport][proto] <- FIN-WAIT2
else
if tcp.flags = ACK & tcp-state[srcip][dstip][srcport][dstport][proto] = FIN-WAIT2 then
  tcp-state[srcip][dstip][srcport][dstport][proto] <- CLOSED
else
if tcp.flags = RST & tcp-state[dstip][srcip][dstport][srcport][proto] = ESTABLISHED then
  tcp-state[dstip][srcip][dstport][srcport][proto] <- CLOSED
else
  (tcp-state[dstip][srcip][dstport][srcport][proto] = ESTABLISHED
   + tcp-state[srcip][dstip][srcport][dstport][proto] = ESTABLISHED)`,
		Opts: consts(map[string]values.Value{
			// The paper tests CLOSED against a fresh entry; CLOSED is the
			// absent/False default.
			"CLOSED": values.Bool(false),
		}),
	},
	{
		Name:   "port-monitor",
		Group:  "Other",
		Source: `count[inport]++`,
		Opts:   consts(nil),
	},
	{
		Name:   "honeypot-transaction",
		Group:  "Other",
		Source: HoneypotSrc,
		Opts:   consts(nil),
	},
}

// All returns the application catalogue sorted by name.
func All() []App {
	out := append([]App(nil), catalogue...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName returns one catalogued application.
func ByName(name string) (App, bool) {
	for _, a := range catalogue {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}

// Names lists the catalogue names in Table 3 order.
func Names() []string {
	out := make([]string, len(catalogue))
	for i, a := range catalogue {
		out[i] = a.Name
	}
	return out
}
