package apps_test

import (
	"testing"

	"snap/internal/apps"
	"snap/internal/pkt"
	"snap/internal/semantics"
	"snap/internal/state"
	"snap/internal/syntax"
	"snap/internal/values"
)

// harness drives one app's policy over a packet sequence against the
// formal semantics, tracking the store.
type harness struct {
	t      *testing.T
	policy syntax.Policy
	store  *state.Store
}

func newHarness(t *testing.T, name string) *harness {
	t.Helper()
	a, ok := apps.ByName(name)
	if !ok {
		t.Fatalf("app %s not in catalogue", name)
	}
	p, err := a.Policy()
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return &harness{t: t, policy: p, store: state.NewStore()}
}

// send evaluates one packet and returns whether it passed (≥1 output).
func (h *harness) send(fields map[pkt.Field]values.Value) bool {
	h.t.Helper()
	r, err := semantics.Eval(h.policy, h.store, pkt.New(fields))
	if err != nil {
		h.t.Fatalf("eval: %v", err)
	}
	h.store = r.Store
	return len(r.Packets) > 0
}

func (h *harness) state(v string, idx ...values.Value) values.Value {
	return h.store.Get(v, values.Tuple(idx))
}

func ip(a, b, c, d byte) values.Value { return values.IPv4(a, b, c, d) }

func TestDNSTunnelDetectBehavior(t *testing.T) {
	h := &harness{t: t, policy: apps.DNSTunnelDetect(), store: state.NewStore()}
	client := ip(10, 0, 6, 9)
	dnsResp := func(resolved values.Value) map[pkt.Field]values.Value {
		return map[pkt.Field]values.Value{
			pkt.SrcIP: ip(10, 0, 2, 53), pkt.DstIP: client,
			pkt.SrcPort: values.Int(53), pkt.DNSRData: resolved,
		}
	}
	// Two orphaned resolutions: suspicious but below threshold.
	h.send(dnsResp(ip(10, 0, 3, 1)))
	h.send(dnsResp(ip(10, 0, 3, 2)))
	if h.state("blacklist", client).True() {
		t.Fatal("blacklisted too early")
	}
	// The client uses one resolution: counter decrements.
	h.send(map[pkt.Field]values.Value{
		pkt.SrcIP: client, pkt.DstIP: ip(10, 0, 3, 1), pkt.SrcPort: values.Int(9999),
	})
	if got := h.state("susp-client", client); !values.Eq(got, values.Int(1)) {
		t.Fatalf("susp-client = %v, want 1", got)
	}
	// Two more orphans cross the threshold (3).
	h.send(dnsResp(ip(10, 0, 3, 3)))
	h.send(dnsResp(ip(10, 0, 3, 4)))
	if !h.state("blacklist", client).True() {
		t.Fatal("tunneling client not blacklisted")
	}
}

func TestStatefulFirewallBehavior(t *testing.T) {
	h := newHarness(t, "stateful-firewall")
	inside, outside := ip(10, 0, 6, 1), ip(10, 0, 2, 2)
	probe := map[pkt.Field]values.Value{pkt.SrcIP: outside, pkt.DstIP: inside}
	if h.send(probe) {
		t.Fatal("unsolicited inbound packet passed")
	}
	h.send(map[pkt.Field]values.Value{pkt.SrcIP: inside, pkt.DstIP: outside})
	if !h.send(probe) {
		t.Fatal("reply to an inside-initiated connection blocked")
	}
	// A different outside host is still blocked.
	if h.send(map[pkt.Field]values.Value{pkt.SrcIP: ip(10, 0, 3, 3), pkt.DstIP: inside}) {
		t.Fatal("stranger passed the firewall")
	}
}

func TestHeavyHitterBehavior(t *testing.T) {
	h := newHarness(t, "heavy-hitter")
	src := ip(10, 0, 1, 1)
	syn := map[pkt.Field]values.Value{pkt.SrcIP: src, pkt.TCPFlags: values.String("SYN")}
	for i := 0; i < apps.Threshold; i++ {
		if h.state("heavy-hitter", src).True() {
			t.Fatalf("flagged after %d SYNs", i)
		}
		h.send(syn)
	}
	if !h.state("heavy-hitter", src).True() {
		t.Fatal("not flagged at threshold")
	}
	// Non-SYN traffic never counts.
	h2 := newHarness(t, "heavy-hitter")
	for i := 0; i < 10; i++ {
		h2.send(map[pkt.Field]values.Value{pkt.SrcIP: src, pkt.TCPFlags: values.String("ACK")})
	}
	if h2.state("heavy-hitter", src).True() {
		t.Fatal("ACKs counted as connections")
	}
}

func TestSuperSpreaderBehavior(t *testing.T) {
	h := newHarness(t, "super-spreader")
	src := ip(10, 0, 1, 2)
	syn := map[pkt.Field]values.Value{pkt.SrcIP: src, pkt.TCPFlags: values.String("SYN")}
	fin := map[pkt.Field]values.Value{pkt.SrcIP: src, pkt.TCPFlags: values.String("FIN")}
	// Opened connections closed promptly: never flagged.
	for i := 0; i < 5; i++ {
		h.send(syn)
		h.send(fin)
	}
	if h.state("super-spreader", src).True() {
		t.Fatal("balanced SYN/FIN flagged")
	}
	// Net spread crossing the threshold flags.
	for i := 0; i < apps.Threshold; i++ {
		h.send(syn)
	}
	if !h.state("super-spreader", src).True() {
		t.Fatal("spreader not flagged")
	}
}

func TestFTPMonitoringBehavior(t *testing.T) {
	h := newHarness(t, "ftp-monitoring")
	client, server := ip(10, 0, 1, 5), ip(10, 0, 2, 21)
	data := map[pkt.Field]values.Value{
		pkt.SrcIP: server, pkt.DstIP: client,
		pkt.SrcPort: values.Int(20), pkt.FTPPort: values.Int(2001),
	}
	if h.send(data) {
		t.Fatal("data channel before PORT announcement")
	}
	h.send(map[pkt.Field]values.Value{
		pkt.SrcIP: client, pkt.DstIP: server,
		pkt.DstPort: values.Int(21), pkt.FTPPort: values.Int(2001),
	})
	if !h.send(data) {
		t.Fatal("announced data channel blocked")
	}
	// A different announced port stays blocked.
	other := map[pkt.Field]values.Value{
		pkt.SrcIP: server, pkt.DstIP: client,
		pkt.SrcPort: values.Int(20), pkt.FTPPort: values.Int(2002),
	}
	if h.send(other) {
		t.Fatal("unannounced data port passed")
	}
}

func TestDNSAmplificationBehavior(t *testing.T) {
	h := newHarness(t, "dns-amplification")
	victim, resolver := ip(10, 0, 6, 1), ip(10, 0, 2, 53)
	spoofed := map[pkt.Field]values.Value{
		pkt.SrcIP: resolver, pkt.DstIP: victim, pkt.SrcPort: values.Int(53),
	}
	if h.send(spoofed) {
		t.Fatal("unsolicited DNS response passed")
	}
	h.send(map[pkt.Field]values.Value{
		pkt.SrcIP: victim, pkt.DstIP: resolver, pkt.DstPort: values.Int(53),
	})
	if !h.send(spoofed) {
		t.Fatal("legitimate DNS response dropped")
	}
}

func TestUDPFloodBehavior(t *testing.T) {
	h := newHarness(t, "udp-flood")
	src := ip(10, 0, 1, 66)
	udp := map[pkt.Field]values.Value{pkt.SrcIP: src, pkt.Proto: values.Int(17)}
	passes := 0
	for i := 0; i < apps.Threshold; i++ {
		if h.send(udp) {
			passes++
		}
	}
	// The threshold packet itself is dropped ("...<- True; drop").
	if passes != apps.Threshold-1 {
		t.Fatalf("passes before flagging = %d, want %d", passes, apps.Threshold-1)
	}
	if !h.state("udp-flooder", src).True() {
		t.Fatal("flooder not flagged")
	}
}

func TestSelectiveDroppingBehavior(t *testing.T) {
	h := newHarness(t, "selective-dropping")
	flow := map[pkt.Field]values.Value{
		pkt.SrcIP: ip(1, 1, 1, 1), pkt.DstIP: ip(2, 2, 2, 2),
		pkt.SrcPort: values.Int(1), pkt.DstPort: values.Int(2),
	}
	iframe := map[pkt.Field]values.Value{pkt.MPEGFrameType: values.String("Iframe")}
	bframe := map[pkt.Field]values.Value{pkt.MPEGFrameType: values.String("Bframe")}
	for k, v := range flow {
		iframe[k], bframe[k] = v, v
	}
	// Before any I-frame the dependency budget is 0: B-frames drop.
	if h.send(bframe) {
		t.Fatal("orphan B-frame passed")
	}
	h.send(iframe) // budget ← 14
	for i := 0; i < 14; i++ {
		if !h.send(bframe) {
			t.Fatalf("dependent frame %d dropped early", i)
		}
	}
	if h.send(bframe) {
		t.Fatal("budget exhausted but frame passed")
	}
}

func TestSidejackBehavior(t *testing.T) {
	h := newHarness(t, "sidejack-detect")
	server := ip(10, 0, 5, 80)
	legit := map[pkt.Field]values.Value{
		pkt.SrcIP: ip(10, 0, 1, 1), pkt.DstIP: server,
		pkt.SessionID: values.Int(7), pkt.HTTPUserAgent: values.String("ua-legit"),
	}
	hijack := map[pkt.Field]values.Value{
		pkt.SrcIP: ip(10, 0, 3, 3), pkt.DstIP: server,
		pkt.SessionID: values.Int(7), pkt.HTTPUserAgent: values.String("ua-evil"),
	}
	if !h.send(legit) {
		t.Fatal("session establishment blocked")
	}
	if h.send(hijack) {
		t.Fatal("sidejacked session passed")
	}
	if !h.send(legit) {
		t.Fatal("legitimate continuation blocked")
	}
}

func TestSpamDetectBehavior(t *testing.T) {
	h := newHarness(t, "spam-detect")
	mta := values.String("mta1")
	mail := map[pkt.Field]values.Value{pkt.SMTPMTA: mta}
	for i := 0; i < apps.Threshold; i++ {
		h.send(mail)
	}
	if got := h.state("MTA-dir", mta); !values.Eq(got, values.String("Spammer")) {
		t.Fatalf("MTA-dir = %v, want Spammer", got)
	}
}

func TestDNSTTLChangeBehavior(t *testing.T) {
	h := newHarness(t, "dns-ttl-change")
	rr := ip(10, 0, 9, 9)
	resp := func(ttl int64) map[pkt.Field]values.Value {
		return map[pkt.Field]values.Value{
			pkt.SrcPort: values.Int(53), pkt.DNSRData: rr, pkt.DNSTTL: values.Int(ttl),
		}
	}
	h.send(resp(60))
	h.send(resp(60)) // unchanged
	h.send(resp(30)) // change 1
	h.send(resp(90)) // change 2
	if got := h.state("ttl-change", rr); !values.Eq(got, values.Int(2)) {
		t.Fatalf("ttl-change = %v, want 2", got)
	}
}

func TestManyIPDomainsBehavior(t *testing.T) {
	h := newHarness(t, "many-ip-domains")
	shared := ip(10, 0, 9, 1)
	resp := func(domain string) map[pkt.Field]values.Value {
		return map[pkt.Field]values.Value{
			pkt.SrcPort: values.Int(53), pkt.DNSRData: shared,
			pkt.DNSQName: values.String(domain),
		}
	}
	h.send(resp("a.com"))
	h.send(resp("a.com")) // duplicate pair does not count twice
	h.send(resp("b.com"))
	if h.state("mal-ip-list", shared).True() {
		t.Fatal("flagged below threshold")
	}
	h.send(resp("c.com"))
	if !h.state("mal-ip-list", shared).True() {
		t.Fatal("shared IP not flagged at threshold")
	}
}

func TestTCPStateMachineBehavior(t *testing.T) {
	h := newHarness(t, "tcp-state-machine")
	a, b := ip(10, 0, 1, 1), ip(10, 0, 2, 2)
	fwd := func(flags string) map[pkt.Field]values.Value {
		return map[pkt.Field]values.Value{
			pkt.SrcIP: a, pkt.DstIP: b, pkt.SrcPort: values.Int(1000),
			pkt.DstPort: values.Int(80), pkt.Proto: values.Int(6),
			pkt.TCPFlags: values.String(flags),
		}
	}
	rev := func(flags string) map[pkt.Field]values.Value {
		return map[pkt.Field]values.Value{
			pkt.SrcIP: b, pkt.DstIP: a, pkt.SrcPort: values.Int(80),
			pkt.DstPort: values.Int(1000), pkt.Proto: values.Int(6),
			pkt.TCPFlags: values.String(flags),
		}
	}
	conn := values.Tuple{a, b, values.Int(1000), values.Int(80), values.Int(6)}

	h.send(fwd("SYN"))
	if got := h.store.Get("tcp-state", conn); !values.Eq(got, values.String("SYN-SENT")) {
		t.Fatalf("after SYN: %v", got)
	}
	h.send(rev("SYN-ACK"))
	if got := h.store.Get("tcp-state", conn); !values.Eq(got, values.String("SYN-RECEIVED")) {
		t.Fatalf("after SYN-ACK: %v", got)
	}
	h.send(fwd("ACK"))
	if got := h.store.Get("tcp-state", conn); !values.Eq(got, values.String("ESTABLISHED")) {
		t.Fatalf("after ACK: %v", got)
	}
	h.send(fwd("FIN"))
	h.send(rev("FIN-ACK"))
	h.send(fwd("ACK"))
	if got := h.store.Get("tcp-state", conn); !values.Eq(got, values.Bool(false)) {
		t.Fatalf("after close: %v, want CLOSED (default)", got)
	}
}

func TestSnortFlowbitsBehavior(t *testing.T) {
	h := newHarness(t, "snort-flowbits")
	conn := map[pkt.Field]values.Value{
		pkt.SrcIP: ip(10, 0, 1, 1), pkt.DstIP: ip(172, 16, 5, 5),
		pkt.SrcPort: values.Int(5000), pkt.DstPort: values.Int(80),
		pkt.Proto: values.Int(6), pkt.Content: values.String("Kindle/3.0+"),
	}
	// The flow is not yet established: the rule does not fire.
	if h.send(conn) {
		t.Fatal("rule fired without established flow")
	}
	// Establish, then the rule fires and sets the kindle flowbit.
	h.store.Set("established", values.Tuple{
		ip(10, 0, 1, 1), ip(172, 16, 5, 5), values.Int(5000), values.Int(80), values.Int(6),
	}, values.Bool(true))
	if !h.send(conn) {
		t.Fatal("established Kindle flow blocked")
	}
	bit := h.store.Get("kindle", values.Tuple{
		ip(10, 0, 1, 1), ip(172, 16, 5, 5), values.Int(5000), values.Int(80), values.Int(6),
	})
	if !bit.True() {
		t.Fatal("kindle flowbit not set")
	}
}

func TestFlowSizeSamplingBehavior(t *testing.T) {
	h := newHarness(t, "flow-size-sampling")
	flow := map[pkt.Field]values.Value{
		pkt.SrcIP: ip(1, 1, 1, 1), pkt.DstIP: ip(2, 2, 2, 2),
		pkt.SrcPort: values.Int(1), pkt.DstPort: values.Int(2), pkt.Proto: values.Int(6),
	}
	// Small flows sample 1 in 5: exactly one of the first five packets
	// passes (the fifth).
	passed := 0
	for i := 0; i < 5; i++ {
		if h.send(flow) {
			passed++
		}
	}
	if passed != 1 {
		t.Fatalf("small flow passed %d of 5, want 1", passed)
	}
}

func TestHoneypotTransaction(t *testing.T) {
	h := &harness{t: t, policy: apps.Honeypot(), store: state.NewStore()}
	h.send(map[pkt.Field]values.Value{
		pkt.Inport: values.Int(2), pkt.SrcIP: ip(10, 0, 4, 4),
		pkt.DstIP: ip(10, 0, 3, 7), pkt.DstPort: values.Int(2323),
	})
	if got := h.state("hon-ip", values.Int(2)); !values.Eq(got, ip(10, 0, 4, 4)) {
		t.Fatalf("hon-ip = %v", got)
	}
	if got := h.state("hon-dstport", values.Int(2)); !values.Eq(got, values.Int(2323)) {
		t.Fatalf("hon-dstport = %v", got)
	}
	// Outside the honeypot prefix (10.0.3.0/25): untouched.
	h.send(map[pkt.Field]values.Value{
		pkt.Inport: values.Int(3), pkt.SrcIP: ip(10, 0, 4, 5),
		pkt.DstIP: ip(10, 0, 3, 200), pkt.DstPort: values.Int(1),
	})
	if got := h.state("hon-ip", values.Int(3)); !got.IsNone() && !values.Eq(got, state.Default) {
		t.Fatalf("honeypot recorded out-of-prefix packet: %v", got)
	}
}

func TestCatalogueComplete(t *testing.T) {
	names := apps.Names()
	if len(names) < 21 {
		t.Fatalf("catalogue has %d entries, want ≥ 21", len(names))
	}
	groups := map[string]int{}
	for _, a := range apps.All() {
		groups[a.Group]++
	}
	for _, g := range []string{"Chimera", "FAST", "Bohatei", "Other"} {
		if groups[g] == 0 {
			t.Errorf("no apps in group %s (Table 3 sources)", g)
		}
	}
}
