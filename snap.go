// Package snap is a Go implementation of SNAP — "Stateful Network-Wide
// Abstractions for Packet Processing" (SIGCOMM 2016): a stateful SDN
// language with a one-big-switch programming model, compiled onto physical
// topologies by jointly optimizing state placement and traffic routing.
//
// Programs are built from predicates and policies (or parsed from the
// paper's surface syntax) and compiled against a topology and traffic
// matrix:
//
//	policy := snap.MustParse(`
//	  if dstip = 10.0.6.0/24 & srcport = 53 then
//	    seen[dstip][dns.rdata] <- True
//	  else id`)
//	dep, err := snap.Compile(snap.Then(policy, snap.AssignEgress(6)),
//	                         snap.Campus(1000), snap.Gravity(net, 100, 1))
//	deliveries, err := dep.Inject(1, packet)
//
// The package re-exports the language (internal/syntax, internal/parser),
// the evaluator (internal/semantics), topology and traffic generators, and
// the full compiler pipeline (dependency analysis → xFDD → packet-state
// mapping → placement/routing optimization → per-switch NetASM rules),
// plus two data-plane runtimes executing compiled deployments: the
// sequential Network (Deployment.Inject) and the concurrent batched
// Engine (Deployment.Engine).
//
// docs/ARCHITECTURE.md documents every internal package with its paper
// cross-reference and invariants; README.md has the quickstart and the
// pipeline overview. The Example functions in examples_test.go are the
// runnable versions of both documents' snippets.
package snap

import (
	"snap/internal/apps"
	"snap/internal/parser"
	"snap/internal/pkt"
	"snap/internal/semantics"
	"snap/internal/shard"
	"snap/internal/state"
	"snap/internal/syntax"
	"snap/internal/topo"
	"snap/internal/traffic"
	"snap/internal/values"
)

// Core language types.
type (
	// Policy is a SNAP policy (Figure 4 of the paper).
	Policy = syntax.Policy
	// Pred is a SNAP predicate; every Pred is a Policy.
	Pred = syntax.Pred
	// Expr is an expression: a value, a field reference, or a vector.
	Expr = syntax.Expr
	// Value is a runtime value (IP, prefix, int, bool, string).
	Value = values.Value
	// Packet is a record of header fields.
	Packet = pkt.Packet
	// Field identifies a packet header field.
	Field = pkt.Field
	// Store holds the contents of all state variables.
	Store = state.Store
	// ParseOptions configures Parse (named constants and sub-policies).
	ParseOptions = parser.Options
	// App is a catalogued example application (Table 3).
	App = apps.App
)

// Topology and traffic types.
type (
	// Topology is a switch graph with external OBS ports.
	Topology = topo.Topology
	// NodeID identifies a switch.
	NodeID = topo.NodeID
	// Port is an external OBS port.
	Port = topo.Port
	// Link is a directed capacitated link.
	Link = topo.Link
	// TrafficMatrix maps OBS port pairs to demand volume.
	TrafficMatrix = traffic.Matrix
)

// Packet fields (the rich field set of §2.1).
const (
	Inport        = pkt.Inport
	Outport       = pkt.Outport
	SrcIP         = pkt.SrcIP
	DstIP         = pkt.DstIP
	SrcPort       = pkt.SrcPort
	DstPort       = pkt.DstPort
	Proto         = pkt.Proto
	TCPFlags      = pkt.TCPFlags
	EthSrc        = pkt.EthSrc
	EthDst        = pkt.EthDst
	DNSQName      = pkt.DNSQName
	DNSRData      = pkt.DNSRData
	DNSTTL        = pkt.DNSTTL
	FTPPort       = pkt.FTPPort
	SMTPMTA       = pkt.SMTPMTA
	HTTPUserAgent = pkt.HTTPUserAgent
	MPEGFrameType = pkt.MPEGFrameType
	SessionID     = pkt.SessionID
	Content       = pkt.Content
)

// --- Values ---

// Bool returns a boolean value.
func Bool(b bool) Value { return values.Bool(b) }

// Int returns an integer value.
func Int(n int64) Value { return values.Int(n) }

// String returns a string value.
func String(s string) Value { return values.String(s) }

// IPv4 returns an IPv4 address value.
func IPv4(a, b, c, d byte) Value { return values.IPv4(a, b, c, d) }

// PrefixV returns an IPv4 prefix value.
func PrefixV(addr uint32, length uint8) Value { return values.Prefix(addr, length) }

// NewPacket builds a packet from field assignments.
func NewPacket(fields map[Field]Value) Packet { return pkt.New(fields) }

// NewStore returns an empty state store.
func NewStore() *Store { return state.NewStore() }

// --- Language constructors (Figure 4) ---

// Id is the identity predicate.
func Id() Pred { return syntax.Id() }

// Drop drops every packet.
func Drop() Pred { return syntax.Nothing() }

// FieldEq is the test f = v.
func FieldEq(f Field, v Value) Pred { return syntax.FieldEq(f, v) }

// Not is negation.
func Not(x Pred) Pred { return syntax.Neg(x) }

// Or is disjunction over any number of predicates.
func Or(xs ...Pred) Pred { return syntax.Disj(xs...) }

// And is conjunction over any number of predicates.
func And(xs ...Pred) Pred { return syntax.Conj(xs...) }

// TestState is the stateful predicate s[idx] = val.
func TestState(s string, idx, val Expr) Pred { return syntax.TestState(s, idx, val) }

// Assign is the field modification f ← v.
func Assign(f Field, v Value) Policy { return syntax.Assign(f, v) }

// Par is parallel composition p + q.
func Par(ps ...Policy) Policy { return syntax.Par(ps...) }

// Then is sequential composition p; q.
func Then(ps ...Policy) Policy { return syntax.Then(ps...) }

// WriteState is the state update s[idx] ← val.
func WriteState(s string, idx, val Expr) Policy { return syntax.WriteState(s, idx, val) }

// IncrState is s[idx]++.
func IncrState(s string, idx Expr) Policy { return syntax.IncrState(s, idx) }

// DecrState is s[idx]--.
func DecrState(s string, idx Expr) Policy { return syntax.DecrState(s, idx) }

// If is the conditional "if a then p else q".
func If(a Pred, p, q Policy) Policy { return syntax.Cond(a, p, q) }

// Atomic is the network transaction atomic(p).
func Atomic(p Policy) Policy { return syntax.Transaction(p) }

// V lifts a value into an expression.
func V(v Value) Expr { return syntax.V(v) }

// F lifts a field reference into an expression.
func F(f Field) Expr { return syntax.F(f) }

// Vec builds a vector expression (composite state index).
func Vec(elems ...Expr) Expr { return syntax.Vec(elems...) }

// --- Parsing ---

// Parse parses a program in the paper's surface syntax.
func Parse(src string) (Policy, error) { return parser.Parse(src) }

// ParseWith parses with constant/sub-policy environments.
func ParseWith(src string, opts ParseOptions) (Policy, error) { return parser.ParseWith(src, opts) }

// MustParse parses or panics.
func MustParse(src string) Policy { return parser.MustParse(src) }

// --- Evaluation (the language specification) ---

// EvalResult is the outcome of evaluating a policy on one packet.
type EvalResult struct {
	Packets []Packet
	Store   *Store
}

// Eval runs the denotational semantics (Appendix A): policy × store ×
// packet → packets × new store. The input store is not modified.
func Eval(p Policy, st *Store, in Packet) (EvalResult, error) {
	r, err := semantics.Eval(p, st, in)
	if err != nil {
		return EvalResult{}, err
	}
	return EvalResult{Packets: r.Packets, Store: r.Store}, nil
}

// --- Topologies and traffic ---

// Campus returns the paper's Figure 2 running-example network.
func Campus(capacity float64) *Topology { return topo.Campus(capacity) }

// NamedTopology synthesizes a Table 5 evaluation topology ("Stanford",
// "Berkeley", "Purdue", "AS1755", "AS1221", "AS6461", "AS3257").
// portScale in (0, 1] trims the port count for faster runs.
func NamedTopology(name string, capacity, portScale float64) (*Topology, error) {
	return topo.Named(name, capacity, portScale)
}

// IGen synthesizes an IGen-style topology with n switches (§6.2).
func IGen(n int, capacity float64) *Topology { return topo.IGen(n, capacity) }

// CampusSwitchName names a switch of the Figure 2 campus topology
// (IDs outside the campus render as "S<n>").
func CampusSwitchName(n NodeID) string { return topo.CampusSwitchName(n) }

// NewTopology builds a custom topology.
func NewTopology(name string, switches int, links []Link, ports []Port) (*Topology, error) {
	return topo.New(name, switches, links, ports)
}

// Gravity synthesizes a gravity-model traffic matrix (Roughan [31]).
func Gravity(t *Topology, total float64, seed int64) TrafficMatrix {
	return traffic.Gravity(t, total, seed)
}

// UniformTraffic builds a matrix with equal demand on every pair.
func UniformTraffic(t *Topology, perPair float64) TrafficMatrix {
	return traffic.Uniform(t, perPair)
}

// --- Example applications (Table 3) ---

// Apps returns the catalogue of Table 3 applications.
func Apps() []App { return apps.All() }

// AppByName retrieves one catalogued application.
func AppByName(name string) (App, bool) { return apps.ByName(name) }

// DNSTunnelDetect returns the Figure 1 program.
func DNSTunnelDetect() Policy { return apps.DNSTunnelDetect() }

// AssignEgress returns the §2.1 forwarding policy for n subnet ports.
func AssignEgress(n int) Policy { return apps.AssignEgress(n) }

// Assumption returns the §4.3 ingress assumption for n subnet ports.
func Assumption(n int) Policy { return apps.Assumption(n) }

// Monitor returns the per-port monitor count[inport]++.
func Monitor() Policy { return apps.Monitor() }

// --- Extensions (§7.3) ---

// ShardPlan describes a state-sharding transformation (Appendix C): a
// variable dispatched on a packet field is split into independently
// placeable shards.
type ShardPlan = shard.Plan

// ShardByPorts plans sharding a variable by OBS ingress port.
func ShardByPorts(varName string, ports []int) ShardPlan {
	return shard.PortsPlan(varName, ports)
}

// ApplyShard rewrites a policy under a sharding plan; the result is
// observationally equivalent, with the shards jointly reconstructing the
// original array.
func ApplyShard(p Policy, plan ShardPlan) (Policy, error) {
	return shard.Apply(p, plan)
}
